//! Shared harness for regenerating the SAP paper's evaluation (§6 and
//! Appendices D–F): workload construction, algorithm factories, and
//! paper-shaped table formatting.
//!
//! Scaling: the paper streams gigabytes through C++ on 2017 hardware; this
//! harness streams `|D|` objects (default 2×10⁵ per run) through Rust.
//! Parameters keep the paper's *ratios* (`k`, `s/n`, sweep shapes), so
//! relative behaviour — who wins, how costs scale along each axis — is
//! comparable even though absolute numbers differ. See EXPERIMENTS.md.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use sap_baselines::{KSkyband, MinTopK, NaiveTopK, Sma};
use sap_core::{Sap, SapConfig, TimeBased};
use sap_stream::generators::{Dataset, Workload};
use sap_stream::{
    checksum_fold, diff_snapshots, run, AsyncHub, EngineFactory, FifoScheduler, Hub, HubStats,
    Object, Predicate, QueryId, QuerySpec, QueryUpdate, RunSummary, SapError, SeededScheduler,
    ShardedHub, SlidingTopK, TimedObject, TimedSpec, TimedTopK, WindowSpec, CHECKSUM_SEED,
};

mod alloc;

pub use alloc::CountingAlloc;

/// Default stream length per measurement run.
pub const DEFAULT_LEN: usize = 200_000;

/// The default query of the paper's Table 1 mapped to harness scale:
/// `n = 10⁴`, `k = 100`, `s = 0.1%·n = 10`.
pub fn default_spec() -> WindowSpec {
    WindowSpec::new(10_000, 100, 10).expect("default spec is valid")
}

/// Algorithms compared in §6.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// SAP with the enhanced dynamic partition (the paper's "SAP").
    Sap,
    /// SAP with the plain dynamic partition ("DYNA").
    SapDynamic,
    /// SAP with the equal partition at `m*` ("EQUAL").
    SapEqual,
    /// MinTopK (Yang et al.).
    MinTopK,
    /// The one-pass k-skyband algorithm.
    KSkyband,
    /// SMA with the grid index.
    Sma,
    /// The naive re-scanning oracle.
    Naive,
}

impl Algo {
    /// Display name used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            Algo::Sap => "SAP",
            Algo::SapDynamic => "DYNA",
            Algo::SapEqual => "EQUAL",
            Algo::MinTopK => "minTopK",
            Algo::KSkyband => "k-skyband",
            Algo::Sma => "SMA",
            Algo::Naive => "naive",
        }
    }

    /// Instantiates the algorithm for a query. The box is `Send` so the
    /// same factory serves the sharded hub's worker threads; it coerces
    /// to a plain `Box<dyn SlidingTopK>` where `Send` is not needed.
    pub fn build(&self, spec: WindowSpec) -> Box<dyn SlidingTopK + Send> {
        match self {
            Algo::Sap => Box::new(Sap::new(SapConfig::new(spec))),
            Algo::SapDynamic => Box::new(Sap::new(SapConfig::dynamic(spec))),
            Algo::SapEqual => Box::new(Sap::new(SapConfig::equal(spec, None))),
            Algo::MinTopK => Box::new(MinTopK::new(spec)),
            Algo::KSkyband => Box::new(KSkyband::new(spec)),
            Algo::Sma => Box::new(Sma::new(spec)),
            Algo::Naive => Box::new(NaiveTopK::new(spec)),
        }
    }
}

/// The harness's [`EngineFactory`]: rebuilds every engine the bench
/// mixes register ([`Algo::build`] plus the [`TimeBased`] wrapping) from
/// the name a checkpoint recorded. The bench crate sits below the `sap`
/// facade, so it carries its own name table instead of reusing the
/// facade's `DefaultEngineFactory`.
pub struct BenchEngineFactory;

impl EngineFactory for BenchEngineFactory {
    fn count(&self, name: &str, spec: WindowSpec) -> Result<Box<dyn SlidingTopK + Send>, SapError> {
        Ok(match name {
            "SAP" => Box::new(Sap::new(SapConfig::new(spec))),
            "SAP-dyna" => Box::new(Sap::new(SapConfig::dynamic(spec))),
            "SAP-equal+savl" => Box::new(Sap::new(SapConfig::equal(spec, None))),
            "MinTopK" => Box::new(MinTopK::new(spec)),
            "k-skyband" => Box::new(KSkyband::new(spec)),
            "SMA" => Box::new(Sma::new(spec)),
            "naive" => Box::new(NaiveTopK::new(spec)),
            other => return Err(SapError::checkpoint_unknown_engine(other)),
        })
    }

    fn timed(&self, name: &str, spec: TimedSpec) -> Result<Box<dyn TimedTopK + Send>, SapError> {
        let inner = self.count(name, spec.reduced().map_err(SapError::Spec)?)?;
        let adapter = TimeBased::from_engine(inner, spec.window_duration, spec.slide_duration)
            .expect("a spec that reduces also wraps");
        Ok(Box::new(adapter))
    }
}

/// Runs one `(algorithm, dataset, spec)` measurement.
pub fn measure(algo: Algo, ds: Dataset, len: usize, spec: WindowSpec, seed: u64) -> RunSummary {
    let data = ds.generate(len, seed);
    let mut alg = algo.build(spec);
    run(alg.as_mut(), &data)
}

/// Runs a measurement on pre-generated data (reuse the stream across
/// algorithms so comparisons share inputs).
pub fn measure_on(algo: Algo, data: &[sap_stream::Object], spec: WindowSpec) -> RunSummary {
    let mut alg = algo.build(spec);
    run(alg.as_mut(), data)
}

/// Simple fixed-width table printer for the experiment binaries.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.into(),
        }
    }

    /// Appends one row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        println!("\n=== {} ===", self.title);
        let fmt_row = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("{}", line.join("  "));
        };
        fmt_row(&self.header);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            fmt_row(row);
        }
    }
}

/// One measured hub configuration from [`run_hub_sequential`] /
/// [`run_hub_sharded`]: wall-clock time plus the evidence needed to call
/// the runs equivalent.
#[derive(Debug, Clone, PartialEq)]
pub struct HubRun {
    /// Total wall-clock time for publishing (and, for the sharded hub,
    /// draining) the whole stream.
    pub elapsed: Duration,
    /// Number of `QueryUpdate`s delivered across all queries.
    pub updates: u64,
    /// Order-sensitive checksum over every update in `(QueryId, slide)`
    /// order — identical between the sequential and sharded hubs when
    /// (and only when) they delivered identical results.
    pub checksum: u64,
    /// Slides served to a query from a shared group digest (0 for runs
    /// that never touch the digest plane).
    pub digest_hits: u64,
    /// Slides a shared query recomputed privately (mid-stream joins
    /// warming up; 0 for non-shared runs).
    pub digest_rebuilds: u64,
}

impl HubRun {
    /// Ingested objects per second — the hub throughput metric. `len` is
    /// the stream length in objects (each object fans out to every
    /// registered query, so compare runs only at equal query counts).
    pub fn objects_per_sec(&self, len: usize) -> f64 {
        len as f64 / self.elapsed.as_secs_f64()
    }
}

/// Deterministic heterogeneous query mix for the hub-scaling bench:
/// cheap windows (so 10⁴ of them fit comfortably in memory) cycling
/// through SAP, MinTopK, and k-skyband with varied `⟨n, k, s⟩`.
pub fn hub_query_mix(count: usize) -> Vec<(Algo, WindowSpec)> {
    let algos = [Algo::Sap, Algo::MinTopK, Algo::KSkyband];
    (0..count)
        .map(|i| {
            let s = [50usize, 100, 200][i % 3];
            let m = [2usize, 4, 8][(i / 3) % 3];
            let k = 1 + (i % 10);
            let spec = WindowSpec::new(s * m, k, s).expect("mix spec is valid");
            (algos[i % algos.len()], spec)
        })
        .collect()
}

/// Folds one update into the running hub checksum: the query handle, the
/// slide index, and the driver's snapshot checksum. Updates must be fed
/// in `(QueryId, slide)` order for cross-run comparability — exactly the
/// order `ShardedHub::drain` returns and the order the sequential hub's
/// per-publish batches already have.
pub fn hub_checksum_fold(acc: u64, update: &QueryUpdate) -> u64 {
    let tagged = [
        Object::new(update.result.slide, 0.0),
        Object::new(update.result.snapshot.len() as u64, 0.0),
    ];
    checksum_fold(checksum_fold(acc, &tagged), &update.result.snapshot)
}

/// Publishes `data` to a sequential [`Hub`] serving `mix`, in chunks of
/// `chunk` objects, timing the publish loop.
pub fn run_hub_sequential(mix: &[(Algo, WindowSpec)], data: &[Object], chunk: usize) -> HubRun {
    let mut hub = Hub::new();
    for (algo, spec) in mix {
        hub.register_boxed(algo.build(*spec));
    }
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let started = Instant::now();
    for c in data.chunks(chunk) {
        for u in hub.publish(c) {
            updates += 1;
            checksum = hub_checksum_fold(checksum, &u);
        }
    }
    HubRun {
        elapsed: started.elapsed(),
        updates,
        checksum,
        digest_hits: 0,
        digest_rebuilds: 0,
    }
}

/// Publishes `data` to a [`ShardedHub`] with `shards` workers serving
/// `mix`, draining after every chunk (which bounds the shard-side update
/// accumulation and exercises the determinism barrier). Timing covers
/// publish + drain, so the comparison against [`run_hub_sequential`]
/// includes all coordination overhead.
pub fn run_hub_sharded(
    mix: &[(Algo, WindowSpec)],
    data: &[Object],
    chunk: usize,
    shards: usize,
) -> HubRun {
    let mut hub = ShardedHub::new(shards);
    for (algo, spec) in mix {
        hub.register_boxed(algo.build(*spec)).expect("fresh shards");
    }
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let started = Instant::now();
    for c in data.chunks(chunk) {
        hub.publish(c).expect("no engine panics in the bench mix");
        for u in hub.drain().expect("no engine panics in the bench mix") {
            updates += 1;
            checksum = hub_checksum_fold(checksum, &u);
        }
    }
    HubRun {
        elapsed: started.elapsed(),
        updates,
        checksum,
        digest_hits: 0,
        digest_rebuilds: 0,
    }
}

/// Publishes `data` to an [`AsyncHub`] with `shards` logical shards
/// served by `workers` reactor threads, draining after every chunk —
/// the same loop as [`run_hub_sharded`], so timing covers publish +
/// drain including all coordination. `seed` selects a
/// [`SeededScheduler`] (schedule-fuzzed runs) instead of the production
/// [`FifoScheduler`]. Returns the run plus the publisher park count —
/// the non-blocking-publish evidence for `BENCH_async.json`.
pub fn run_hub_async(
    mix: &[(Algo, WindowSpec)],
    data: &[Object],
    chunk: usize,
    shards: usize,
    workers: usize,
    seed: Option<u64>,
) -> (HubRun, u64) {
    let scheduler: Box<dyn sap_stream::Scheduler> = match seed {
        Some(seed) => Box::new(SeededScheduler::new(seed)),
        None => Box::new(FifoScheduler),
    };
    let mut hub = AsyncHub::with_scheduler(shards, workers, scheduler);
    for (algo, spec) in mix {
        hub.register_boxed(algo.build(*spec)).expect("fresh shards");
    }
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let started = Instant::now();
    for c in data.chunks(chunk) {
        hub.publish(c).expect("no engine panics in the bench mix");
        for u in hub.drain().expect("no engine panics in the bench mix") {
            updates += 1;
            checksum = hub_checksum_fold(checksum, &u);
        }
    }
    let run = HubRun {
        elapsed: started.elapsed(),
        updates,
        checksum,
        digest_hits: 0,
        digest_rebuilds: 0,
    };
    (run, hub.publisher_parks())
}

/// Heterogeneous **mixed-model** query set for the timed hub bench:
/// entries alternate between count-based geometries (the
/// [`hub_query_mix`] shapes) and time-based geometries whose slide
/// durations straddle the stream's mean inter-arrival gap, so timed
/// slides range from packed to empty.
pub fn timed_query_mix(count: usize) -> Vec<(Algo, QuerySpec)> {
    let algos = [Algo::Sap, Algo::MinTopK, Algo::KSkyband];
    (0..count)
        .map(|i| {
            let algo = algos[i % algos.len()];
            if i % 2 == 0 {
                let s = [50usize, 100, 200][(i / 2) % 3];
                let m = [2usize, 4, 8][(i / 6) % 3];
                let k = 1 + (i % 10);
                let spec = WindowSpec::new(s * m, k, s).expect("mix spec is valid");
                (algo, QuerySpec::Count(spec))
            } else {
                let sd = [20u64, 50, 120][(i / 2) % 3];
                let m = [2u64, 4, 8][(i / 6) % 3];
                let k = 1 + (i % 10);
                let spec = TimedSpec::new(sd * m, sd, k).expect("mix spec is valid");
                (algo, QuerySpec::Timed(spec))
            }
        })
        .collect()
}

/// Instantiates one mixed-model query: time-based specs get the
/// algorithm wrapped in the Appendix-A [`TimeBased`] adapter over the
/// reduced spec.
fn build_timed_entry(algo: Algo, spec: TimedSpec) -> Box<dyn TimedTopK + Send> {
    let inner = algo.build(spec.reduced().expect("mix spec is valid"));
    Box::new(
        TimeBased::from_engine(inner, spec.window_duration, spec.slide_duration)
            .expect("reduced spec matches by construction"),
    )
}

/// Publishes a timed stream to a sequential [`Hub`] serving a mixed
/// count+timed `mix`, in chunks of `chunk` objects, closing trailing
/// slides with a final watermark. Timing covers the full publish loop.
pub fn run_timed_hub_sequential(
    mix: &[(Algo, QuerySpec)],
    data: &[TimedObject],
    chunk: usize,
) -> HubRun {
    let mut hub = Hub::new();
    for (algo, spec) in mix {
        match spec {
            QuerySpec::Count(spec) => {
                hub.register_boxed(algo.build(*spec));
            }
            QuerySpec::Timed(spec) => {
                let engine: Box<dyn TimedTopK> = build_timed_entry(*algo, *spec);
                hub.register_timed_boxed(engine);
            }
        }
    }
    let horizon = data.last().map_or(0, |o| o.timestamp) + 1;
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let started = Instant::now();
    for c in data.chunks(chunk) {
        for u in hub.publish_timed(c) {
            updates += 1;
            checksum = hub_checksum_fold(checksum, &u);
        }
    }
    for u in hub.advance_time(horizon) {
        updates += 1;
        checksum = hub_checksum_fold(checksum, &u);
    }
    HubRun {
        elapsed: started.elapsed(),
        updates,
        checksum,
        digest_hits: 0,
        digest_rebuilds: 0,
    }
}

/// The sharded counterpart of [`run_timed_hub_sequential`]: publishes
/// the timed stream to a [`ShardedHub`] with `shards` workers, draining
/// after every chunk. Checksums are comparable across the two runners —
/// equal iff the hubs delivered identical results.
pub fn run_timed_hub_sharded(
    mix: &[(Algo, QuerySpec)],
    data: &[TimedObject],
    chunk: usize,
    shards: usize,
) -> HubRun {
    let mut hub = ShardedHub::new(shards);
    for (algo, spec) in mix {
        match spec {
            QuerySpec::Count(spec) => {
                hub.register_boxed(algo.build(*spec)).expect("fresh shards");
            }
            QuerySpec::Timed(spec) => {
                hub.register_timed_boxed(build_timed_entry(*algo, *spec))
                    .expect("fresh shards");
            }
        }
    }
    let horizon = data.last().map_or(0, |o| o.timestamp) + 1;
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let started = Instant::now();
    let fold = |hub: &mut ShardedHub, updates: &mut u64, checksum: &mut u64| {
        for u in hub.drain().expect("no engine panics in the bench mix") {
            *updates += 1;
            *checksum = hub_checksum_fold(*checksum, &u);
        }
    };
    for c in data.chunks(chunk) {
        hub.publish_timed(c)
            .expect("no engine panics in the bench mix");
        fold(&mut hub, &mut updates, &mut checksum);
    }
    hub.advance_time(horizon)
        .expect("no engine panics in the bench mix");
    fold(&mut hub, &mut updates, &mut checksum);
    HubRun {
        elapsed: started.elapsed(),
        updates,
        checksum,
        digest_hits: 0,
        digest_rebuilds: 0,
    }
}

/// All-timed query mix for the shared-digest bench: `count` queries over
/// only **four** distinct slide durations (the many-queries/few-groups
/// regime the digest plane targets), windows spanning 2–8 slides, `k`
/// from 1 to 10. Slide durations are large multiples of the generated
/// stream's mean inter-arrival gap so slides hold many objects — the
/// per-slide truncation the plane deduplicates is real work.
pub fn shared_query_mix(count: usize) -> Vec<(Algo, TimedSpec)> {
    let algos = [Algo::Sap, Algo::MinTopK, Algo::KSkyband];
    let sds = [1_000u64, 2_000, 4_000, 8_000];
    (0..count)
        .map(|i| {
            let sd = sds[i % sds.len()];
            let m = [2u64, 4, 8][(i / 4) % 3];
            let k = 1 + (i % 10);
            let spec = TimedSpec::new(sd * m, sd, k).expect("mix spec is valid");
            (algos[i % algos.len()], spec)
        })
        .collect()
}

/// The per-session-recomputation reference for the shared bench: the
/// same timed mix served by isolated Appendix-A adapters (see
/// [`run_timed_hub_sequential`]).
pub fn run_shared_isolated(
    mix: &[(Algo, TimedSpec)],
    data: &[TimedObject],
    chunk: usize,
) -> HubRun {
    let isolated: Vec<(Algo, QuerySpec)> =
        mix.iter().map(|&(a, s)| (a, QuerySpec::Timed(s))).collect();
    run_timed_hub_sequential(&isolated, data, chunk)
}

/// Publishes a timed stream to a sequential [`Hub`] serving `mix` on the
/// **shared digest plane** (`register_shared_boxed`): one digest producer
/// per distinct slide duration feeds every member query. Checksums are
/// comparable with [`run_shared_isolated`] — equal iff the plane is
/// byte-identical to per-session recomputation — and the run records the
/// hub's digest hit/rebuild counters.
pub fn run_shared_hub(mix: &[(Algo, TimedSpec)], data: &[TimedObject], chunk: usize) -> HubRun {
    let mut hub = Hub::new();
    for (algo, spec) in mix {
        let engine: Box<dyn SlidingTopK> = algo.build(spec.reduced().expect("mix spec is valid"));
        hub.register_shared_boxed(engine, spec.window_duration, spec.slide_duration)
            .expect("engine built over the reduced spec");
    }
    let horizon = data.last().map_or(0, |o| o.timestamp) + 1;
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let started = Instant::now();
    for c in data.chunks(chunk) {
        for u in hub.publish_timed(c) {
            updates += 1;
            checksum = hub_checksum_fold(checksum, &u);
        }
    }
    for u in hub.advance_time(horizon) {
        updates += 1;
        checksum = hub_checksum_fold(checksum, &u);
    }
    let elapsed = started.elapsed();
    let stats = hub.stats();
    HubRun {
        elapsed,
        updates,
        checksum,
        digest_hits: stats.digest_hits,
        digest_rebuilds: stats.digest_rebuilds,
    }
}

/// The sharded counterpart of [`run_shared_hub`]: the same shared mix on
/// a [`ShardedHub`] with `shards` workers, slide groups shard-local,
/// draining after every chunk.
pub fn run_shared_hub_sharded(
    mix: &[(Algo, TimedSpec)],
    data: &[TimedObject],
    chunk: usize,
    shards: usize,
) -> HubRun {
    let mut hub = ShardedHub::new(shards);
    for (algo, spec) in mix {
        hub.register_shared_boxed(
            algo.build(spec.reduced().expect("mix spec is valid")),
            spec.window_duration,
            spec.slide_duration,
        )
        .expect("fresh shards accept valid engines");
    }
    let horizon = data.last().map_or(0, |o| o.timestamp) + 1;
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let started = Instant::now();
    let fold = |hub: &mut ShardedHub, updates: &mut u64, checksum: &mut u64| {
        for u in hub.drain().expect("no engine panics in the bench mix") {
            *updates += 1;
            *checksum = hub_checksum_fold(*checksum, &u);
        }
    };
    for c in data.chunks(chunk) {
        hub.publish_timed(c)
            .expect("no engine panics in the bench mix");
        fold(&mut hub, &mut updates, &mut checksum);
    }
    hub.advance_time(horizon)
        .expect("no engine panics in the bench mix");
    fold(&mut hub, &mut updates, &mut checksum);
    let elapsed = started.elapsed();
    let stats = hub.stats().expect("no engine panics in the bench mix");
    HubRun {
        elapsed,
        updates,
        checksum,
        digest_hits: stats.digest_hits,
        digest_rebuilds: stats.digest_rebuilds,
    }
}

/// Count-based query mix for the `fanout` preset: `count` queries over
/// only **three** distinct slide lengths (the million-query regime the
/// shared count plane targets), windows spanning 2–8 slides, `k` from 1
/// to 10. Registered together at stream offset 0, the mix collapses
/// into three geometry classes — `(s, 0)` for each distinct `s` — so
/// per-object ingest work is paid per class, not per query. Slides are
/// deliberately **coarse** (`s ≥ 250`): the per-object cost the plane
/// makes sub-linear is the ingest fan-out (every isolated session
/// buffers every object), while slide-close serving — linear in members
/// by definition, it produces one update per member — stays rare.
pub fn fanout_query_mix(count: usize) -> Vec<(Algo, WindowSpec)> {
    let algos = [Algo::Sap, Algo::MinTopK, Algo::KSkyband];
    (0..count)
        .map(|i| {
            let s = [250usize, 500, 1_000][i % 3];
            let m = [2usize, 4, 8][(i / 3) % 3];
            let k = 1 + (i % 10);
            let spec = WindowSpec::new(s * m, k, s).expect("mix spec is valid");
            (algos[i % algos.len()], spec)
        })
        .collect()
}

/// One measured `fanout` configuration: the hub run, the hub's sharing
/// counters, and the **quiet-path split** the preset's sub-linearity
/// claim rests on. Total cost necessarily has a component linear in the
/// query count — every completed slide delivers one update per member —
/// so the preset separates the publishes that completed no slide
/// anywhere: there the isolated path still pays every session (each one
/// buffers every object) while the grouped path pays once per geometry
/// class, independent of membership.
#[derive(Debug, Clone, PartialEq)]
pub struct FanoutRun {
    /// Whole-stream timing and equivalence evidence.
    pub run: HubRun,
    /// The hub's counters after the run ([`HubStats::count_group_hits`]
    /// proves sharing happened; `count_group_rebuilds` counts isolated
    /// count slides — work grouping would have pooled).
    pub stats: HubStats,
    /// Objects published by calls that completed no slide.
    pub quiet_objects: u64,
    /// Wall-clock total of those quiet publishes.
    pub quiet_elapsed: Duration,
}

impl FanoutRun {
    /// Per-object cost of the pure ingest path. `None` if the chunking
    /// never produced a quiet publish (or, sharded, where per-call cost
    /// cannot be attributed across worker threads).
    pub fn quiet_ns_per_object(&self) -> Option<f64> {
        (self.quiet_objects > 0)
            .then(|| self.quiet_elapsed.as_secs_f64() * 1e9 / self.quiet_objects as f64)
    }
}

/// Shared publish loop of the sequential `fanout` runners: times every
/// publish call individually so quiet (no-slide) chunks can be
/// attributed, folds the order-sensitive checksum, and reads the hub's
/// counters back.
fn run_fanout_on(mut hub: Hub, data: &[Object], chunk: usize) -> FanoutRun {
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let mut quiet_objects = 0u64;
    let mut quiet_elapsed = Duration::ZERO;
    let started = Instant::now();
    for c in data.chunks(chunk) {
        let before = Instant::now();
        let batch = hub.publish(c);
        let took = before.elapsed();
        if batch.is_empty() {
            quiet_objects += c.len() as u64;
            quiet_elapsed += took;
        }
        for u in batch {
            updates += 1;
            checksum = hub_checksum_fold(checksum, &u);
        }
    }
    let elapsed = started.elapsed();
    let stats = hub.stats();
    FanoutRun {
        run: HubRun {
            elapsed,
            updates,
            checksum,
            digest_hits: 0,
            digest_rebuilds: 0,
        },
        stats,
        quiet_objects,
        quiet_elapsed,
    }
}

/// The per-session reference for the `fanout` preset: the same
/// count-based mix served by **isolated** sessions ([`Hub::register_boxed`]).
pub fn run_fanout_isolated(mix: &[(Algo, WindowSpec)], data: &[Object], chunk: usize) -> FanoutRun {
    let mut hub = Hub::new();
    for (algo, spec) in mix {
        hub.register_boxed(algo.build(*spec));
    }
    run_fanout_on(hub, data, chunk)
}

/// Publishes `data` to a sequential [`Hub`] serving `mix` on the
/// **shared count plane** (`register_grouped_boxed`): queries sharing a
/// window geometry ingest each object once per group and slice their
/// `(n, k)` views from the group digest. The checksum is comparable
/// with [`run_fanout_isolated`] over the same mix — equal iff grouping
/// is byte-identical to per-session serving.
pub fn run_fanout_grouped(mix: &[(Algo, WindowSpec)], data: &[Object], chunk: usize) -> FanoutRun {
    let mut hub = Hub::new();
    for (algo, spec) in mix {
        let reduced = TimedSpec::new(spec.n as u64, spec.s as u64, spec.k)
            .and_then(|t| t.reduced())
            .expect("mix spec reduces");
        let engine: Box<dyn SlidingTopK> = algo.build(reduced);
        hub.register_grouped_boxed(engine, spec.n, spec.s)
            .expect("engine built over the reduced spec");
    }
    run_fanout_on(hub, data, chunk)
}

/// The sharded counterpart of [`run_fanout_grouped`]: the same grouped
/// mix on a [`ShardedHub`] with `shards` workers — count groups
/// shard-local via `home_shard` affinity — draining after every chunk.
/// Quiet publishes are not attributed (publish is asynchronous and the
/// drain is a barrier), so `quiet_objects` stays 0.
pub fn run_fanout_grouped_sharded(
    mix: &[(Algo, WindowSpec)],
    data: &[Object],
    chunk: usize,
    shards: usize,
) -> FanoutRun {
    let mut hub = ShardedHub::new(shards);
    for (algo, spec) in mix {
        let reduced = TimedSpec::new(spec.n as u64, spec.s as u64, spec.k)
            .and_then(|t| t.reduced())
            .expect("mix spec reduces");
        hub.register_grouped_boxed(algo.build(reduced), spec.n, spec.s)
            .expect("fresh shards accept valid engines");
    }
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let started = Instant::now();
    for c in data.chunks(chunk) {
        hub.publish(c).expect("no engine panics in the bench mix");
        for u in hub.drain().expect("no engine panics in the bench mix") {
            updates += 1;
            checksum = hub_checksum_fold(checksum, &u);
        }
    }
    let elapsed = started.elapsed();
    let stats = hub.stats().expect("no engine panics in the bench mix");
    FanoutRun {
        run: HubRun {
            elapsed,
            updates,
            checksum,
            digest_hits: 0,
            digest_rebuilds: 0,
        },
        stats,
        quiet_objects: 0,
        quiet_elapsed: Duration::ZERO,
    }
}

/// Which serving shape a `floor` preset arm exercises over one fixed
/// window geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloorArm {
    /// Isolated sessions: every member runs a full engine slide per
    /// close — the reference the checksums are anchored to.
    Isolated,
    /// Grouped with result-class pooling disabled
    /// (`Hub::set_result_class_sharing(false)`): members share the
    /// group's ingest but each solo class still computes its own
    /// `apply_slide_top`, diff, and snapshot per close — the
    /// pre-memoization per-member update floor.
    Unclassed,
    /// Grouped with result-class pooling (the default): one computed
    /// close per class, then a refcount bump plus an id/slide tag per
    /// member.
    Classed,
}

impl FloorArm {
    /// JSON/table label.
    pub fn label(&self) -> &'static str {
        match self {
            FloorArm::Isolated => "isolated",
            FloorArm::Unclassed => "unclassed",
            FloorArm::Classed => "classed",
        }
    }
}

/// One measured `floor` configuration: whole-stream timing plus the
/// **slide-close split** the memoization claim rests on. Quiet publishes
/// (no slide anywhere) price the shared ingest; close publishes price
/// serving — the per-member cost the result-class tier collapses.
#[derive(Debug, Clone, PartialEq)]
pub struct FloorRun {
    /// Whole-stream timing and equivalence evidence.
    pub run: HubRun,
    /// The hub's counters after the run ([`HubStats::class_hits`] proves
    /// memoized serving happened; zero proves it could not have).
    pub stats: HubStats,
    /// Publishes that completed at least one slide.
    pub closes: u64,
    /// Wall-clock total of those close publishes.
    pub close_elapsed: Duration,
    /// Objects published by calls that completed no slide.
    pub quiet_objects: u64,
    /// Wall-clock total of those quiet publishes.
    pub quiet_elapsed: Duration,
}

impl FloorRun {
    /// Mean serving cost per member per close, in microseconds — the
    /// per-member update floor. `None` before the first close.
    pub fn close_us_per_member(&self, members: usize) -> Option<f64> {
        (self.closes > 0 && members > 0)
            .then(|| self.close_elapsed.as_secs_f64() * 1e6 / (self.closes as f64 * members as f64))
    }

    /// Per-object cost of the pure ingest path, like
    /// [`FanoutRun::quiet_ns_per_object`].
    pub fn quiet_ns_per_object(&self) -> Option<f64> {
        (self.quiet_objects > 0)
            .then(|| self.quiet_elapsed.as_secs_f64() * 1e9 / self.quiet_objects as f64)
    }
}

/// Serves `members` same-geometry SAP queries over `data` in one of the
/// three [`FloorArm`] shapes, timing every publish individually so close
/// and quiet costs separate. Checksums are comparable across arms over
/// the same inputs — equal iff result classes (and the group plane under
/// them) are byte-identical to isolated serving.
pub fn run_floor(
    spec: WindowSpec,
    members: usize,
    data: &[Object],
    chunk: usize,
    arm: FloorArm,
) -> FloorRun {
    let mut hub = Hub::new();
    if arm == FloorArm::Unclassed {
        hub.set_result_class_sharing(false);
    }
    for _ in 0..members {
        match arm {
            FloorArm::Isolated => {
                hub.register_boxed(Algo::Sap.build(spec));
            }
            FloorArm::Unclassed | FloorArm::Classed => {
                let reduced = TimedSpec::new(spec.n as u64, spec.s as u64, spec.k)
                    .and_then(|t| t.reduced())
                    .expect("floor spec reduces");
                hub.register_grouped_boxed(Algo::Sap.build(reduced), spec.n, spec.s)
                    .expect("engine built over the reduced spec");
            }
        }
    }
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let mut closes = 0u64;
    let mut close_elapsed = Duration::ZERO;
    let mut quiet_objects = 0u64;
    let mut quiet_elapsed = Duration::ZERO;
    let started = Instant::now();
    for c in data.chunks(chunk) {
        let before = Instant::now();
        let batch = hub.publish(c);
        let took = before.elapsed();
        if batch.is_empty() {
            quiet_objects += c.len() as u64;
            quiet_elapsed += took;
        } else {
            closes += 1;
            close_elapsed += took;
        }
        for u in batch {
            updates += 1;
            checksum = hub_checksum_fold(checksum, &u);
        }
    }
    let elapsed = started.elapsed();
    let stats = hub.stats();
    FloorRun {
        run: HubRun {
            elapsed,
            updates,
            checksum,
            digest_hits: 0,
            digest_rebuilds: 0,
        },
        stats,
        closes,
        close_elapsed,
        quiet_objects,
        quiet_elapsed,
    }
}

/// Which admission-knob position a `prune` preset arm runs over one
/// shared-timed-plane workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneArm {
    /// Admission pruning disabled (`Hub::set_admission_pruning(false)`):
    /// every predicate-passing object is buffered into its group's open
    /// slide — the reference the checksums are anchored to.
    Off,
    /// Dominance pruning only (the default knob position, pass-all
    /// predicates): objects strictly dominated by `k_max` already-admitted
    /// open-slide objects are dropped at the gate.
    Dominance,
    /// Dominance pruning plus a selective subscription predicate
    /// (`score ≥ 500` on a `1000·u⁴` skew): most objects are rejected
    /// before the gate is even consulted. The threshold sits far below
    /// every slide's top-`k_max`, so results stay byte-identical.
    DominancePredicate,
}

impl PruneArm {
    /// JSON/table label.
    pub fn label(&self) -> &'static str {
        match self {
            PruneArm::Off => "off",
            PruneArm::Dominance => "dominance",
            PruneArm::DominancePredicate => "dominance+predicate",
        }
    }
}

/// One measured `prune` configuration: whole-stream timing plus the
/// admission counters the pruning claim rests on.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneRun {
    /// Whole-stream timing and equivalence evidence.
    pub run: HubRun,
    /// The hub's counters after the run ([`HubStats::pruned`] proves the
    /// gate fired; zero proves it could not have).
    pub stats: HubStats,
}

/// Skewed-score, gap-1 timed stream for the `prune` preset: scores are
/// `1000·u⁴` for uniform `u` (an LCG over `seed`), so most arrivals sit
/// far below each slide's top-`k_max` — exactly the regime ingest-side
/// dominance pruning targets — while the top of every slide stays well
/// above the [`PruneArm::DominancePredicate`] threshold.
pub fn prune_stream(len: usize, seed: u64) -> Vec<TimedObject> {
    let mut x = seed | 1;
    (0..len)
        .map(|i| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((x >> 11) as f64) / ((1u64 << 53) as f64);
            TimedObject::new(i as u64, i as u64, 1000.0 * u * u * u * u)
        })
        .collect()
}

/// Shared-timed-plane query mix for the `prune` preset: up to 1024
/// distinct slide durations spread across `[sd_base, 2·sd_base)` (each
/// founding one slide group), window durations spanning 1–2 slides,
/// `k` fixed per group in 1..=8 (so each group's `k_max` — the gate
/// capacity — stays small), algorithms cycling through the
/// shared-plane trio. With gap-1 arrivals over a `2·sd_base` stream,
/// every group buffers thousands of objects against a gate of at most
/// 8 and closes exactly one slide — the per-object ingest fan-out the
/// admission plane collapses dominates, while slide-close serving
/// (identical across arms by construction) stays rare.
pub fn prune_query_mix(count: usize, sd_base: u64) -> Vec<(Algo, TimedSpec)> {
    let algos = [Algo::Sap, Algo::MinTopK, Algo::KSkyband];
    let step = (sd_base / 1024).max(1);
    (0..count)
        .map(|i| {
            let g = (i % 1024) as u64;
            let sd = (sd_base + step * g).min(sd_base * 2 - 1);
            let m = 1 + (i / 1024) as u64 % 2;
            let k = 1 + (i % 8);
            let spec = TimedSpec::new(sd * m, sd, k).expect("mix spec is valid");
            (algos[(i / 2048) % 3], spec)
        })
        .collect()
}

/// Publishes a timed stream to a sequential [`Hub`] serving `mix` on
/// the shared digest plane with the admission knob in the chosen
/// [`PruneArm`] position. Checksums are comparable across arms over the
/// same inputs — equal iff the admission plane is result-invisible —
/// and the run records the hub's admitted/pruned counters.
pub fn run_prune(
    mix: &[(Algo, TimedSpec)],
    data: &[TimedObject],
    chunk: usize,
    arm: PruneArm,
) -> PruneRun {
    let mut hub = Hub::new();
    if arm == PruneArm::Off {
        hub.set_admission_pruning(false);
    }
    let predicate = match arm {
        PruneArm::DominancePredicate => Predicate::any().score_at_least(500.0),
        _ => Predicate::any(),
    };
    for (algo, spec) in mix {
        hub.register_shared_filtered_boxed(
            algo.build(spec.reduced().expect("mix spec is valid")),
            spec.window_duration,
            spec.slide_duration,
            predicate,
        )
        .expect("engine built over the reduced spec");
    }
    let horizon = data.last().map_or(0, |o| o.timestamp) + 1;
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let started = Instant::now();
    for c in data.chunks(chunk) {
        for u in hub.publish_timed(c) {
            updates += 1;
            checksum = hub_checksum_fold(checksum, &u);
        }
    }
    for u in hub.advance_time(horizon) {
        updates += 1;
        checksum = hub_checksum_fold(checksum, &u);
    }
    let elapsed = started.elapsed();
    let stats = hub.stats();
    PruneRun {
        run: HubRun {
            elapsed,
            updates,
            checksum,
            digest_hits: stats.digest_hits,
            digest_rebuilds: stats.digest_rebuilds,
        },
        stats,
    }
}

/// One standing query of the `hotpath` preset's **mixed-model** set:
/// count-based, isolated time-based, or shared-plane time-based — the
/// three session flavors whose slide-completion paths the zero-allocation
/// refactor touches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HotQuery {
    /// A count-based session (`AnySession::Count`).
    Count(Algo, WindowSpec),
    /// An isolated Appendix-A adapter session (`AnySession::Timed`).
    Timed(Algo, TimedSpec),
    /// A shared-digest-plane session (`AnySession::Shared`).
    Shared(Algo, TimedSpec),
}

/// Mixed count/timed/shared query set for the `hotpath` preset, cycling
/// evenly through the three session flavors. Count geometries use small
/// slides (`s ∈ {10, 20, 50}`) and small `k`, so slide completion — the
/// path the allocation discipline targets — fires densely; timed slide
/// durations straddle a few multiples of the generated stream's ~25-unit
/// mean gap; shared entries use two distinct slide durations so digest
/// groups actually form.
pub fn hotpath_query_mix(count: usize) -> Vec<HotQuery> {
    let algos = [Algo::Sap, Algo::MinTopK, Algo::KSkyband];
    (0..count)
        .map(|i| {
            let algo = algos[(i / 3) % algos.len()];
            match i % 3 {
                0 => {
                    let s = [5usize, 10, 20][(i / 3) % 3];
                    let m = [4usize, 8, 16][(i / 9) % 3];
                    let k = 1 + (i % 3);
                    HotQuery::Count(
                        algo,
                        WindowSpec::new(s * m, k, s).expect("mix spec is valid"),
                    )
                }
                1 => {
                    let sd = [50u64, 100, 200][(i / 3) % 3];
                    let m = [4u64, 8][(i / 9) % 2];
                    let k = 1 + (i % 5);
                    HotQuery::Timed(
                        algo,
                        TimedSpec::new(sd * m, sd, k).expect("mix spec is valid"),
                    )
                }
                _ => {
                    let sd = [400u64, 800][(i / 3) % 2];
                    let m = [2u64, 4][(i / 9) % 2];
                    let k = 1 + (i % 10);
                    HotQuery::Shared(
                        algo,
                        TimedSpec::new(sd * m, sd, k).expect("mix spec is valid"),
                    )
                }
            }
        })
        .collect()
}

/// How the pre-refactor publish plane treated a query's slides — drives
/// the per-update allocation replay of [`HotpathMode::Legacy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LegacyFlavor {
    /// Count-based SAP: had the O(1) dirty flag, so a provably quiet
    /// slide skipped the diff (but still collected and cloned the
    /// snapshot).
    CountSap,
    /// Count-based baseline: no dirty flag, the diff always ran.
    Count,
    /// Isolated Appendix-A adapter: materialized a refcounted digest per
    /// slide and copied through the consumer (kept prefix, padded batch,
    /// cloned result, collected outer list) before the session's own
    /// snapshot copies.
    Timed,
    /// Shared-plane member: the group digest was shared, but the consumer
    /// still copied its kept prefix, batch, and result per applied slide.
    Shared,
}

fn register_hotpath_sequential(hub: &mut Hub, mix: &[HotQuery]) -> HashMap<QueryId, LegacyFlavor> {
    let mut flavors = HashMap::new();
    for q in mix {
        let (id, flavor) = match *q {
            HotQuery::Count(algo, spec) => (
                hub.register_boxed(algo.build(spec)),
                if matches!(algo, Algo::Sap | Algo::SapDynamic | Algo::SapEqual) {
                    LegacyFlavor::CountSap
                } else {
                    LegacyFlavor::Count
                },
            ),
            HotQuery::Timed(algo, spec) => {
                let engine: Box<dyn TimedTopK> = build_timed_entry(algo, spec);
                (hub.register_timed_boxed(engine), LegacyFlavor::Timed)
            }
            HotQuery::Shared(algo, spec) => (
                hub.register_shared_boxed(
                    algo.build(spec.reduced().expect("mix spec is valid")),
                    spec.window_duration,
                    spec.slide_duration,
                )
                .expect("engine built over the reduced spec"),
                LegacyFlavor::Shared,
            ),
        };
        flavors.insert(id, flavor);
    }
    flavors
}

/// Which per-update cost model a [`run_hotpath`] case charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotpathMode {
    /// The pre-refactor publish plane, re-enacted: on top of the shared
    /// computation, every update performs the allocations the seed code
    /// performed per completed slide — the snapshot `collect`, the
    /// `snapshot.clone()` into the emitted result, and the allocating
    /// [`diff_snapshots`] — plus the per-publish timestamp-strip `Vec`.
    /// (The two paths cannot coexist as code, so the legacy case replays
    /// the old *allocation profile* on identical results; the replay is
    /// generous to the legacy side — updates the pooled path proved
    /// unchanged skip the diff's id buffers, which the old diff-proven
    /// path still allocated.)
    Legacy,
    /// The pooled plane as shipped: `Arc`-shared snapshots, per-session
    /// scratch, registry-pooled staging.
    Pooled,
}

/// One measured `hotpath` case: whole-stream equivalence evidence plus
/// steady-state (post-warm-up) throughput and allocator pressure.
#[derive(Debug, Clone, PartialEq)]
pub struct HotpathRun {
    /// Wall-clock time of the steady phase (everything after warm-up,
    /// including the final watermark).
    pub elapsed: Duration,
    /// Objects published during the steady phase.
    pub steady_objects: u64,
    /// Heap allocations during the steady phase — `None` for sharded
    /// runs, whose worker threads share the process-global counter.
    pub steady_allocs: Option<u64>,
    /// `QueryUpdate`s delivered across the whole stream.
    pub updates: u64,
    /// Order-sensitive checksum over every update of the whole stream.
    pub checksum: u64,
    /// Digest-plane hit/rebuild counters (shared sessions only).
    pub digest_hits: u64,
    /// See [`HotpathRun::digest_hits`].
    pub digest_rebuilds: u64,
}

impl HotpathRun {
    /// Steady-phase ingest throughput.
    pub fn objects_per_sec(&self) -> f64 {
        self.steady_objects as f64 / self.elapsed.as_secs_f64()
    }

    /// Steady-phase allocations per published object — the
    /// `BENCH_hotpath.json` headline metric.
    pub fn allocs_per_object(&self) -> Option<f64> {
        self.steady_allocs
            .map(|a| a as f64 / self.steady_objects as f64)
    }
}

/// The pre-refactor allocation profile, re-enacted per update (see
/// [`HotpathMode::Legacy`]).
struct LegacyReplay {
    prev: HashMap<QueryId, Vec<Object>>,
    flavors: HashMap<QueryId, LegacyFlavor>,
}

impl LegacyReplay {
    fn new(flavors: HashMap<QueryId, LegacyFlavor>) -> Self {
        LegacyReplay {
            prev: HashMap::new(),
            flavors,
        }
    }

    /// The seed registry stripped timestamps into a fresh `Vec` on every
    /// `publish_timed` call.
    fn strip(&self, chunk: &[TimedObject]) {
        let plain: Vec<Object> = chunk.iter().map(TimedObject::untimed).collect();
        std::hint::black_box(&plain);
    }

    /// Per-publish costs of the old plane that today's registry pools:
    /// the `Vec<QueryUpdate>` grown unhinted from empty (today: one
    /// reserve from the retained high-water hint), and one result `Vec`
    /// per session that completed slides (the old per-call trait
    /// contract; today sessions stage into the registry's pooled buffer).
    /// Footprints match the old structs: an update was two ids plus two
    /// `Vec` headers, a session result entry was a 64-byte `SlideResult`.
    fn replay_publish(&self, updates: &[QueryUpdate]) {
        let mut unhinted: Vec<(u64, u64, Vec<Object>, Vec<Object>)> = Vec::new();
        for u in updates {
            unhinted.push((0, u.result.slide, Vec::new(), Vec::new()));
        }
        std::hint::black_box(&unhinted);
        let mut i = 0;
        while i < updates.len() {
            let mut j = i;
            while j < updates.len() && updates[j].query == updates[i].query {
                j += 1;
            }
            let mut session_out: Vec<[u64; 8]> = Vec::new();
            for _ in i..j {
                session_out.push([0; 8]);
            }
            std::hint::black_box(&session_out);
            i = j;
        }
    }

    /// Re-enacts the allocations the pre-refactor code performed for this
    /// update, per session flavor:
    ///
    /// * every flavor: the session's translated-snapshot `collect`, its
    ///   `clone()` into the emitted `SlideResult`, and the allocating
    ///   [`diff_snapshots`] (two sorted-id buffers plus the event `Vec`) —
    ///   skipped only where the old code could: count-based SAP's dirty
    ///   flag;
    /// * timed (isolated adapter): the per-slide digest materialization
    ///   the old `TimeBased::ingest` performed — the refcounted
    ///   `SlideDigest` and its `top` list, the consumer's kept-prefix and
    ///   padded-batch copies, the cloned consumer result, and the
    ///   `Vec<Vec<_>>` collect of the trait contract;
    /// * shared: the group digest was already shared, but the consumer
    ///   still copied kept prefix, batch, and result per applied slide,
    ///   and the session collected the per-call result list.
    fn replay(&mut self, update: &QueryUpdate) {
        let snapshot: Vec<Object> = update.result.snapshot.to_vec();
        match self.flavors.get(&update.query) {
            Some(LegacyFlavor::Timed) => {
                // the old close_slide moved its accumulation buffer into
                // the digest (`mem::take`), so the next slide's buffer
                // regrew from empty — re-enact the growth pattern
                let mut regrown: Vec<Object> = Vec::new();
                for o in &snapshot {
                    regrown.push(*o);
                }
                let digest = std::sync::Arc::new(regrown);
                let kept = snapshot.clone();
                let batch: Vec<Object> = Vec::with_capacity(kept.len().max(1));
                let outer = vec![snapshot.clone()];
                std::hint::black_box((&digest, &kept, &batch, &outer));
            }
            Some(LegacyFlavor::Shared) => {
                let kept = snapshot.clone();
                let batch: Vec<Object> = Vec::with_capacity(kept.len().max(1));
                let outer = vec![snapshot.clone()];
                std::hint::black_box((&kept, &batch, &outer));
            }
            _ => {}
        }
        let retained = snapshot.clone();
        // only count-based SAP had the O(1) no-change proof; every other
        // flavor diffed unconditionally
        let known_unchanged = matches!(
            self.flavors.get(&update.query),
            Some(LegacyFlavor::CountSap)
        ) && update.result.events.is_unchanged();
        let prev = self.prev.entry(update.query).or_default();
        let events = diff_snapshots(prev, &snapshot, known_unchanged);
        std::hint::black_box(&events);
        *prev = retained;
    }
}

/// Publishes a timed stream to a sequential [`Hub`] serving the mixed
/// `mix`, in chunks of `chunk` objects. The first `warmup` objects warm
/// every pooled buffer (and the digest plane) without being measured;
/// the remainder — plus the final watermark — is timed, with the heap
/// pressure read from `allocations` (the caller's counting global
/// allocator). Checksums cover the whole stream and are comparable
/// across modes and with [`run_hotpath_sharded`].
pub fn run_hotpath(
    mix: &[HotQuery],
    data: &[TimedObject],
    chunk: usize,
    warmup: usize,
    mode: HotpathMode,
    allocations: &dyn Fn() -> u64,
) -> HotpathRun {
    let mut hub = Hub::new();
    let flavors = register_hotpath_sequential(&mut hub, mix);
    let horizon = data.last().map_or(0, |o| o.timestamp) + 1;
    let mut legacy = match mode {
        HotpathMode::Legacy => Some(LegacyReplay::new(flavors)),
        HotpathMode::Pooled => None,
    };
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let publish = |hub: &mut Hub,
                   c: &[TimedObject],
                   legacy: &mut Option<LegacyReplay>,
                   updates: &mut u64,
                   checksum: &mut u64| {
        let batch = hub.publish_timed(c);
        if let Some(replayer) = legacy {
            replayer.strip(c);
            replayer.replay_publish(&batch);
        }
        for u in batch {
            *updates += 1;
            *checksum = hub_checksum_fold(*checksum, &u);
            if let Some(replayer) = legacy {
                replayer.replay(&u);
            }
        }
    };
    let warmup = warmup.min(data.len());
    for c in data[..warmup].chunks(chunk) {
        publish(&mut hub, c, &mut legacy, &mut updates, &mut checksum);
    }
    let alloc_base = allocations();
    let started = Instant::now();
    for c in data[warmup..].chunks(chunk) {
        publish(&mut hub, c, &mut legacy, &mut updates, &mut checksum);
    }
    for u in hub.advance_time(horizon) {
        updates += 1;
        checksum = hub_checksum_fold(checksum, &u);
        if let Some(replayer) = &mut legacy {
            replayer.replay(&u);
        }
    }
    let elapsed = started.elapsed();
    let steady_allocs = allocations() - alloc_base;
    let stats = hub.stats();
    HotpathRun {
        elapsed,
        steady_objects: (data.len() - warmup) as u64,
        steady_allocs: Some(steady_allocs),
        updates,
        checksum,
        digest_hits: stats.digest_hits,
        digest_rebuilds: stats.digest_rebuilds,
    }
}

/// The sharded cross-check of [`run_hotpath`]: the same mixed set on a
/// [`ShardedHub`], draining per chunk — its whole-stream checksum must
/// equal the sequential runs'. Allocations are not attributed (worker
/// threads share the global counter), so `steady_allocs` is `None`.
pub fn run_hotpath_sharded(
    mix: &[HotQuery],
    data: &[TimedObject],
    chunk: usize,
    warmup: usize,
    shards: usize,
) -> HotpathRun {
    let mut hub = ShardedHub::new(shards);
    for q in mix {
        match *q {
            HotQuery::Count(algo, spec) => {
                hub.register_boxed(algo.build(spec)).expect("fresh shards");
            }
            HotQuery::Timed(algo, spec) => {
                hub.register_timed_boxed(build_timed_entry(algo, spec))
                    .expect("fresh shards");
            }
            HotQuery::Shared(algo, spec) => {
                hub.register_shared_boxed(
                    algo.build(spec.reduced().expect("mix spec is valid")),
                    spec.window_duration,
                    spec.slide_duration,
                )
                .expect("fresh shards accept valid engines");
            }
        }
    }
    let horizon = data.last().map_or(0, |o| o.timestamp) + 1;
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let fold = |hub: &mut ShardedHub, updates: &mut u64, checksum: &mut u64| {
        for u in hub.drain().expect("no engine panics in the bench mix") {
            *updates += 1;
            *checksum = hub_checksum_fold(*checksum, &u);
        }
    };
    let warmup = warmup.min(data.len());
    for c in data[..warmup].chunks(chunk) {
        hub.publish_timed(c)
            .expect("no engine panics in the bench mix");
        fold(&mut hub, &mut updates, &mut checksum);
    }
    let started = Instant::now();
    for c in data[warmup..].chunks(chunk) {
        hub.publish_timed(c)
            .expect("no engine panics in the bench mix");
        fold(&mut hub, &mut updates, &mut checksum);
    }
    hub.advance_time(horizon)
        .expect("no engine panics in the bench mix");
    fold(&mut hub, &mut updates, &mut checksum);
    let elapsed = started.elapsed();
    let stats = hub.stats().expect("no engine panics in the bench mix");
    HotpathRun {
        elapsed,
        steady_objects: (data.len() - warmup) as u64,
        steady_allocs: None,
        updates,
        checksum,
        digest_hits: stats.digest_hits,
        digest_rebuilds: stats.digest_rebuilds,
    }
}

/// Formats seconds with millisecond precision.
pub fn secs(summary: &RunSummary) -> String {
    format!("{:.3}", summary.elapsed.as_secs_f64())
}

/// Formats the average candidate count.
pub fn cands(summary: &RunSummary) -> String {
    format!("{:.0}", summary.avg_candidates)
}

/// Formats the average candidate memory in KB (Appendix F's unit).
pub fn mem_kb(summary: &RunSummary) -> String {
    format!("{:.1}", summary.avg_memory_bytes / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_instantiate_and_run() {
        let spec = WindowSpec::new(200, 5, 10).unwrap();
        for algo in [
            Algo::Sap,
            Algo::SapDynamic,
            Algo::SapEqual,
            Algo::MinTopK,
            Algo::KSkyband,
            Algo::Sma,
            Algo::Naive,
        ] {
            let s = measure(algo, Dataset::TimeU, 2_000, spec, 1);
            assert_eq!(s.slides, 200, "{}", algo.label());
        }
    }

    #[test]
    fn identical_inputs_identical_checksums() {
        let spec = WindowSpec::new(100, 5, 10).unwrap();
        let data = Dataset::Stock.generate(2_000, 3);
        let a = measure_on(Algo::Sap, &data, spec);
        let b = measure_on(Algo::MinTopK, &data, spec);
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn table_printer_roundtrip() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print(); // must not panic
    }

    #[test]
    fn hub_runs_agree_across_shard_counts() {
        let mix = hub_query_mix(17);
        assert_eq!(mix.len(), 17);
        let data = Dataset::Stock.generate(3_000, 11);
        let seq = run_hub_sequential(&mix, &data, 250);
        assert!(seq.updates > 0);
        assert!(seq.objects_per_sec(data.len()).is_finite());
        for shards in [1, 2, 4] {
            let par = run_hub_sharded(&mix, &data, 250, shards);
            assert_eq!(par.updates, seq.updates, "shards={shards}");
            assert_eq!(par.checksum, seq.checksum, "shards={shards}");
        }
    }

    #[test]
    fn timed_hub_runs_agree_across_shard_counts() {
        use sap_stream::ArrivalProcess;
        let mix = timed_query_mix(13);
        assert!(mix.iter().any(|(_, s)| matches!(s, QuerySpec::Timed(_))));
        assert!(mix.iter().any(|(_, s)| matches!(s, QuerySpec::Count(_))));
        let data = Dataset::Stock.generate_timed(3_000, 11, ArrivalProcess::poisson(8.0));
        let seq = run_timed_hub_sequential(&mix, &data, 250);
        assert!(seq.updates > 0);
        for shards in [1, 2, 4] {
            let par = run_timed_hub_sharded(&mix, &data, 250, shards);
            assert_eq!(par.updates, seq.updates, "shards={shards}");
            assert_eq!(par.checksum, seq.checksum, "shards={shards}");
        }
    }

    #[test]
    fn hotpath_modes_and_hubs_agree() {
        use sap_stream::ArrivalProcess;
        let mix = hotpath_query_mix(30);
        assert!(mix.iter().any(|q| matches!(q, HotQuery::Count(..))));
        assert!(mix.iter().any(|q| matches!(q, HotQuery::Timed(..))));
        assert!(mix.iter().any(|q| matches!(q, HotQuery::Shared(..))));
        let data = Dataset::Stock.generate_timed(4_000, 11, ArrivalProcess::poisson(25.0));
        // no counting allocator installed here: the counter input only
        // feeds the reported metric, not the run itself
        let none = || 0u64;
        let pooled = run_hotpath(&mix, &data, 250, 1_000, HotpathMode::Pooled, &none);
        assert!(pooled.updates > 0);
        assert_eq!(pooled.steady_objects, 3_000);
        assert!(pooled.digest_hits > 0, "shared members must share");
        let legacy = run_hotpath(&mix, &data, 250, 1_000, HotpathMode::Legacy, &none);
        assert_eq!(
            legacy.checksum, pooled.checksum,
            "the legacy replay must not change results"
        );
        assert_eq!(legacy.updates, pooled.updates);
        for shards in [1, 2] {
            let par = run_hotpath_sharded(&mix, &data, 250, 1_000, shards);
            assert_eq!(par.checksum, pooled.checksum, "shards={shards}");
            assert_eq!(par.updates, pooled.updates, "shards={shards}");
            assert_eq!(par.steady_allocs, None);
        }
    }

    #[test]
    fn fanout_runs_match_isolated_serving() {
        let mix = fanout_query_mix(40);
        let data = Dataset::Stock.generate(3_000, 11);
        // chunk 125 halves the smallest slide (250), so every other
        // publish is quiet and the quiet-path split has data
        let iso = run_fanout_isolated(&mix, &data, 125);
        assert!(iso.run.updates > 0);
        assert!(
            iso.quiet_objects > 0,
            "sub-slide chunks must yield quiet publishes"
        );
        assert!(iso.quiet_ns_per_object().is_some_and(|ns| ns.is_finite()));
        assert_eq!(
            iso.stats.count_group_rebuilds, iso.run.updates,
            "every isolated count slide is a rebuild"
        );
        let grp = run_fanout_grouped(&mix, &data, 125);
        assert_eq!(grp.run.updates, iso.run.updates);
        assert_eq!(
            grp.run.checksum, iso.run.checksum,
            "grouping must not change results"
        );
        assert!(grp.quiet_objects > 0);
        assert_eq!(grp.stats.count_groups, 3, "three slide lengths, one offset");
        assert_eq!(grp.stats.grouped_queries, 40);
        assert!(
            grp.stats.count_group_hits > 0,
            "40 queries over 3 groups must share"
        );
        assert_eq!(
            grp.stats.count_group_rebuilds, 0,
            "no isolated count sessions"
        );
        for shards in [1, 2, 4] {
            let par = run_fanout_grouped_sharded(&mix, &data, 125, shards);
            assert_eq!(par.run.updates, iso.run.updates, "shards={shards}");
            assert_eq!(par.run.checksum, iso.run.checksum, "shards={shards}");
            assert!(par.stats.count_group_hits > 0, "shards={shards}");
            assert_eq!(par.quiet_objects, 0, "sharded quiet cost is unattributed");
        }
    }

    #[test]
    fn shared_runs_match_isolated_recomputation() {
        use sap_stream::ArrivalProcess;
        let mix = shared_query_mix(25);
        let data = Dataset::Stock.generate_timed(3_000, 11, ArrivalProcess::poisson(25.0));
        let iso = run_shared_isolated(&mix, &data, 250);
        assert!(iso.updates > 0);
        assert_eq!(iso.digest_hits, 0, "isolated adapters never share");
        let shared = run_shared_hub(&mix, &data, 250);
        assert_eq!(shared.updates, iso.updates);
        assert_eq!(
            shared.checksum, iso.checksum,
            "sharing must not change results"
        );
        assert!(
            shared.digest_hits > 0,
            "25 queries over 4 groups must share"
        );
        assert_eq!(shared.digest_rebuilds, 0, "all registered up front");
        for shards in [1, 2, 4] {
            let par = run_shared_hub_sharded(&mix, &data, 250, shards);
            assert_eq!(par.updates, iso.updates, "shards={shards}");
            assert_eq!(par.checksum, iso.checksum, "shards={shards}");
            assert!(par.digest_hits > 0, "shards={shards}");
        }
    }
}
