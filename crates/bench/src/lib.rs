//! Shared harness for regenerating the SAP paper's evaluation (§6 and
//! Appendices D–F): workload construction, algorithm factories, and
//! paper-shaped table formatting.
//!
//! Scaling: the paper streams gigabytes through C++ on 2017 hardware; this
//! harness streams `|D|` objects (default 2×10⁵ per run) through Rust.
//! Parameters keep the paper's *ratios* (`k`, `s/n`, sweep shapes), so
//! relative behaviour — who wins, how costs scale along each axis — is
//! comparable even though absolute numbers differ. See EXPERIMENTS.md.

use std::time::{Duration, Instant};

use sap_baselines::{KSkyband, MinTopK, NaiveTopK, Sma};
use sap_core::{Sap, SapConfig, TimeBased};
use sap_stream::generators::{Dataset, Workload};
use sap_stream::{
    checksum_fold, run, Hub, Object, QuerySpec, QueryUpdate, RunSummary, ShardedHub, SlidingTopK,
    TimedObject, TimedSpec, TimedTopK, WindowSpec, CHECKSUM_SEED,
};

/// Default stream length per measurement run.
pub const DEFAULT_LEN: usize = 200_000;

/// The default query of the paper's Table 1 mapped to harness scale:
/// `n = 10⁴`, `k = 100`, `s = 0.1%·n = 10`.
pub fn default_spec() -> WindowSpec {
    WindowSpec::new(10_000, 100, 10).expect("default spec is valid")
}

/// Algorithms compared in §6.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// SAP with the enhanced dynamic partition (the paper's "SAP").
    Sap,
    /// SAP with the plain dynamic partition ("DYNA").
    SapDynamic,
    /// SAP with the equal partition at `m*` ("EQUAL").
    SapEqual,
    /// MinTopK (Yang et al.).
    MinTopK,
    /// The one-pass k-skyband algorithm.
    KSkyband,
    /// SMA with the grid index.
    Sma,
    /// The naive re-scanning oracle.
    Naive,
}

impl Algo {
    /// Display name used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            Algo::Sap => "SAP",
            Algo::SapDynamic => "DYNA",
            Algo::SapEqual => "EQUAL",
            Algo::MinTopK => "minTopK",
            Algo::KSkyband => "k-skyband",
            Algo::Sma => "SMA",
            Algo::Naive => "naive",
        }
    }

    /// Instantiates the algorithm for a query. The box is `Send` so the
    /// same factory serves the sharded hub's worker threads; it coerces
    /// to a plain `Box<dyn SlidingTopK>` where `Send` is not needed.
    pub fn build(&self, spec: WindowSpec) -> Box<dyn SlidingTopK + Send> {
        match self {
            Algo::Sap => Box::new(Sap::new(SapConfig::new(spec))),
            Algo::SapDynamic => Box::new(Sap::new(SapConfig::dynamic(spec))),
            Algo::SapEqual => Box::new(Sap::new(SapConfig::equal(spec, None))),
            Algo::MinTopK => Box::new(MinTopK::new(spec)),
            Algo::KSkyband => Box::new(KSkyband::new(spec)),
            Algo::Sma => Box::new(Sma::new(spec)),
            Algo::Naive => Box::new(NaiveTopK::new(spec)),
        }
    }
}

/// Runs one `(algorithm, dataset, spec)` measurement.
pub fn measure(algo: Algo, ds: Dataset, len: usize, spec: WindowSpec, seed: u64) -> RunSummary {
    let data = ds.generate(len, seed);
    let mut alg = algo.build(spec);
    run(alg.as_mut(), &data)
}

/// Runs a measurement on pre-generated data (reuse the stream across
/// algorithms so comparisons share inputs).
pub fn measure_on(algo: Algo, data: &[sap_stream::Object], spec: WindowSpec) -> RunSummary {
    let mut alg = algo.build(spec);
    run(alg.as_mut(), data)
}

/// Simple fixed-width table printer for the experiment binaries.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.into(),
        }
    }

    /// Appends one row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        println!("\n=== {} ===", self.title);
        let fmt_row = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("{}", line.join("  "));
        };
        fmt_row(&self.header);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            fmt_row(row);
        }
    }
}

/// One measured hub configuration from [`run_hub_sequential`] /
/// [`run_hub_sharded`]: wall-clock time plus the evidence needed to call
/// the runs equivalent.
#[derive(Debug, Clone, PartialEq)]
pub struct HubRun {
    /// Total wall-clock time for publishing (and, for the sharded hub,
    /// draining) the whole stream.
    pub elapsed: Duration,
    /// Number of `QueryUpdate`s delivered across all queries.
    pub updates: u64,
    /// Order-sensitive checksum over every update in `(QueryId, slide)`
    /// order — identical between the sequential and sharded hubs when
    /// (and only when) they delivered identical results.
    pub checksum: u64,
    /// Slides served to a query from a shared group digest (0 for runs
    /// that never touch the digest plane).
    pub digest_hits: u64,
    /// Slides a shared query recomputed privately (mid-stream joins
    /// warming up; 0 for non-shared runs).
    pub digest_rebuilds: u64,
}

impl HubRun {
    /// Ingested objects per second — the hub throughput metric. `len` is
    /// the stream length in objects (each object fans out to every
    /// registered query, so compare runs only at equal query counts).
    pub fn objects_per_sec(&self, len: usize) -> f64 {
        len as f64 / self.elapsed.as_secs_f64()
    }
}

/// Deterministic heterogeneous query mix for the hub-scaling bench:
/// cheap windows (so 10⁴ of them fit comfortably in memory) cycling
/// through SAP, MinTopK, and k-skyband with varied `⟨n, k, s⟩`.
pub fn hub_query_mix(count: usize) -> Vec<(Algo, WindowSpec)> {
    let algos = [Algo::Sap, Algo::MinTopK, Algo::KSkyband];
    (0..count)
        .map(|i| {
            let s = [50usize, 100, 200][i % 3];
            let m = [2usize, 4, 8][(i / 3) % 3];
            let k = 1 + (i % 10);
            let spec = WindowSpec::new(s * m, k, s).expect("mix spec is valid");
            (algos[i % algos.len()], spec)
        })
        .collect()
}

/// Folds one update into the running hub checksum: the query handle, the
/// slide index, and the driver's snapshot checksum. Updates must be fed
/// in `(QueryId, slide)` order for cross-run comparability — exactly the
/// order `ShardedHub::drain` returns and the order the sequential hub's
/// per-publish batches already have.
pub fn hub_checksum_fold(acc: u64, update: &QueryUpdate) -> u64 {
    let tagged = [
        Object::new(update.result.slide, 0.0),
        Object::new(update.result.snapshot.len() as u64, 0.0),
    ];
    checksum_fold(checksum_fold(acc, &tagged), &update.result.snapshot)
}

/// Publishes `data` to a sequential [`Hub`] serving `mix`, in chunks of
/// `chunk` objects, timing the publish loop.
pub fn run_hub_sequential(mix: &[(Algo, WindowSpec)], data: &[Object], chunk: usize) -> HubRun {
    let mut hub = Hub::new();
    for (algo, spec) in mix {
        hub.register_boxed(algo.build(*spec));
    }
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let started = Instant::now();
    for c in data.chunks(chunk) {
        for u in hub.publish(c) {
            updates += 1;
            checksum = hub_checksum_fold(checksum, &u);
        }
    }
    HubRun {
        elapsed: started.elapsed(),
        updates,
        checksum,
        digest_hits: 0,
        digest_rebuilds: 0,
    }
}

/// Publishes `data` to a [`ShardedHub`] with `shards` workers serving
/// `mix`, draining after every chunk (which bounds the shard-side update
/// accumulation and exercises the determinism barrier). Timing covers
/// publish + drain, so the comparison against [`run_hub_sequential`]
/// includes all coordination overhead.
pub fn run_hub_sharded(
    mix: &[(Algo, WindowSpec)],
    data: &[Object],
    chunk: usize,
    shards: usize,
) -> HubRun {
    let mut hub = ShardedHub::new(shards);
    for (algo, spec) in mix {
        hub.register_boxed(algo.build(*spec)).expect("fresh shards");
    }
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let started = Instant::now();
    for c in data.chunks(chunk) {
        hub.publish(c).expect("no engine panics in the bench mix");
        for u in hub.drain().expect("no engine panics in the bench mix") {
            updates += 1;
            checksum = hub_checksum_fold(checksum, &u);
        }
    }
    HubRun {
        elapsed: started.elapsed(),
        updates,
        checksum,
        digest_hits: 0,
        digest_rebuilds: 0,
    }
}

/// Heterogeneous **mixed-model** query set for the timed hub bench:
/// entries alternate between count-based geometries (the
/// [`hub_query_mix`] shapes) and time-based geometries whose slide
/// durations straddle the stream's mean inter-arrival gap, so timed
/// slides range from packed to empty.
pub fn timed_query_mix(count: usize) -> Vec<(Algo, QuerySpec)> {
    let algos = [Algo::Sap, Algo::MinTopK, Algo::KSkyband];
    (0..count)
        .map(|i| {
            let algo = algos[i % algos.len()];
            if i % 2 == 0 {
                let s = [50usize, 100, 200][(i / 2) % 3];
                let m = [2usize, 4, 8][(i / 6) % 3];
                let k = 1 + (i % 10);
                let spec = WindowSpec::new(s * m, k, s).expect("mix spec is valid");
                (algo, QuerySpec::Count(spec))
            } else {
                let sd = [20u64, 50, 120][(i / 2) % 3];
                let m = [2u64, 4, 8][(i / 6) % 3];
                let k = 1 + (i % 10);
                let spec = TimedSpec::new(sd * m, sd, k).expect("mix spec is valid");
                (algo, QuerySpec::Timed(spec))
            }
        })
        .collect()
}

/// Instantiates one mixed-model query: time-based specs get the
/// algorithm wrapped in the Appendix-A [`TimeBased`] adapter over the
/// reduced spec.
fn build_timed_entry(algo: Algo, spec: TimedSpec) -> Box<dyn TimedTopK + Send> {
    let inner = algo.build(spec.reduced().expect("mix spec is valid"));
    Box::new(
        TimeBased::from_engine(inner, spec.window_duration, spec.slide_duration)
            .expect("reduced spec matches by construction"),
    )
}

/// Publishes a timed stream to a sequential [`Hub`] serving a mixed
/// count+timed `mix`, in chunks of `chunk` objects, closing trailing
/// slides with a final watermark. Timing covers the full publish loop.
pub fn run_timed_hub_sequential(
    mix: &[(Algo, QuerySpec)],
    data: &[TimedObject],
    chunk: usize,
) -> HubRun {
    let mut hub = Hub::new();
    for (algo, spec) in mix {
        match spec {
            QuerySpec::Count(spec) => {
                hub.register_boxed(algo.build(*spec));
            }
            QuerySpec::Timed(spec) => {
                let engine: Box<dyn TimedTopK> = build_timed_entry(*algo, *spec);
                hub.register_timed_boxed(engine);
            }
        }
    }
    let horizon = data.last().map_or(0, |o| o.timestamp) + 1;
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let started = Instant::now();
    for c in data.chunks(chunk) {
        for u in hub.publish_timed(c) {
            updates += 1;
            checksum = hub_checksum_fold(checksum, &u);
        }
    }
    for u in hub.advance_time(horizon) {
        updates += 1;
        checksum = hub_checksum_fold(checksum, &u);
    }
    HubRun {
        elapsed: started.elapsed(),
        updates,
        checksum,
        digest_hits: 0,
        digest_rebuilds: 0,
    }
}

/// The sharded counterpart of [`run_timed_hub_sequential`]: publishes
/// the timed stream to a [`ShardedHub`] with `shards` workers, draining
/// after every chunk. Checksums are comparable across the two runners —
/// equal iff the hubs delivered identical results.
pub fn run_timed_hub_sharded(
    mix: &[(Algo, QuerySpec)],
    data: &[TimedObject],
    chunk: usize,
    shards: usize,
) -> HubRun {
    let mut hub = ShardedHub::new(shards);
    for (algo, spec) in mix {
        match spec {
            QuerySpec::Count(spec) => {
                hub.register_boxed(algo.build(*spec)).expect("fresh shards");
            }
            QuerySpec::Timed(spec) => {
                hub.register_timed_boxed(build_timed_entry(*algo, *spec))
                    .expect("fresh shards");
            }
        }
    }
    let horizon = data.last().map_or(0, |o| o.timestamp) + 1;
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let started = Instant::now();
    let fold = |hub: &mut ShardedHub, updates: &mut u64, checksum: &mut u64| {
        for u in hub.drain().expect("no engine panics in the bench mix") {
            *updates += 1;
            *checksum = hub_checksum_fold(*checksum, &u);
        }
    };
    for c in data.chunks(chunk) {
        hub.publish_timed(c)
            .expect("no engine panics in the bench mix");
        fold(&mut hub, &mut updates, &mut checksum);
    }
    hub.advance_time(horizon)
        .expect("no engine panics in the bench mix");
    fold(&mut hub, &mut updates, &mut checksum);
    HubRun {
        elapsed: started.elapsed(),
        updates,
        checksum,
        digest_hits: 0,
        digest_rebuilds: 0,
    }
}

/// All-timed query mix for the shared-digest bench: `count` queries over
/// only **four** distinct slide durations (the many-queries/few-groups
/// regime the digest plane targets), windows spanning 2–8 slides, `k`
/// from 1 to 10. Slide durations are large multiples of the generated
/// stream's mean inter-arrival gap so slides hold many objects — the
/// per-slide truncation the plane deduplicates is real work.
pub fn shared_query_mix(count: usize) -> Vec<(Algo, TimedSpec)> {
    let algos = [Algo::Sap, Algo::MinTopK, Algo::KSkyband];
    let sds = [1_000u64, 2_000, 4_000, 8_000];
    (0..count)
        .map(|i| {
            let sd = sds[i % sds.len()];
            let m = [2u64, 4, 8][(i / 4) % 3];
            let k = 1 + (i % 10);
            let spec = TimedSpec::new(sd * m, sd, k).expect("mix spec is valid");
            (algos[i % algos.len()], spec)
        })
        .collect()
}

/// The per-session-recomputation reference for the shared bench: the
/// same timed mix served by isolated Appendix-A adapters (see
/// [`run_timed_hub_sequential`]).
pub fn run_shared_isolated(
    mix: &[(Algo, TimedSpec)],
    data: &[TimedObject],
    chunk: usize,
) -> HubRun {
    let isolated: Vec<(Algo, QuerySpec)> =
        mix.iter().map(|&(a, s)| (a, QuerySpec::Timed(s))).collect();
    run_timed_hub_sequential(&isolated, data, chunk)
}

/// Publishes a timed stream to a sequential [`Hub`] serving `mix` on the
/// **shared digest plane** (`register_shared_boxed`): one digest producer
/// per distinct slide duration feeds every member query. Checksums are
/// comparable with [`run_shared_isolated`] — equal iff the plane is
/// byte-identical to per-session recomputation — and the run records the
/// hub's digest hit/rebuild counters.
pub fn run_shared_hub(mix: &[(Algo, TimedSpec)], data: &[TimedObject], chunk: usize) -> HubRun {
    let mut hub = Hub::new();
    for (algo, spec) in mix {
        let engine: Box<dyn SlidingTopK> = algo.build(spec.reduced().expect("mix spec is valid"));
        hub.register_shared_boxed(engine, spec.window_duration, spec.slide_duration)
            .expect("engine built over the reduced spec");
    }
    let horizon = data.last().map_or(0, |o| o.timestamp) + 1;
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let started = Instant::now();
    for c in data.chunks(chunk) {
        for u in hub.publish_timed(c) {
            updates += 1;
            checksum = hub_checksum_fold(checksum, &u);
        }
    }
    for u in hub.advance_time(horizon) {
        updates += 1;
        checksum = hub_checksum_fold(checksum, &u);
    }
    let elapsed = started.elapsed();
    let stats = hub.stats();
    HubRun {
        elapsed,
        updates,
        checksum,
        digest_hits: stats.digest_hits,
        digest_rebuilds: stats.digest_rebuilds,
    }
}

/// The sharded counterpart of [`run_shared_hub`]: the same shared mix on
/// a [`ShardedHub`] with `shards` workers, slide groups shard-local,
/// draining after every chunk.
pub fn run_shared_hub_sharded(
    mix: &[(Algo, TimedSpec)],
    data: &[TimedObject],
    chunk: usize,
    shards: usize,
) -> HubRun {
    let mut hub = ShardedHub::new(shards);
    for (algo, spec) in mix {
        hub.register_shared_boxed(
            algo.build(spec.reduced().expect("mix spec is valid")),
            spec.window_duration,
            spec.slide_duration,
        )
        .expect("fresh shards accept valid engines");
    }
    let horizon = data.last().map_or(0, |o| o.timestamp) + 1;
    let mut updates = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let started = Instant::now();
    let fold = |hub: &mut ShardedHub, updates: &mut u64, checksum: &mut u64| {
        for u in hub.drain().expect("no engine panics in the bench mix") {
            *updates += 1;
            *checksum = hub_checksum_fold(*checksum, &u);
        }
    };
    for c in data.chunks(chunk) {
        hub.publish_timed(c)
            .expect("no engine panics in the bench mix");
        fold(&mut hub, &mut updates, &mut checksum);
    }
    hub.advance_time(horizon)
        .expect("no engine panics in the bench mix");
    fold(&mut hub, &mut updates, &mut checksum);
    let elapsed = started.elapsed();
    let stats = hub.stats().expect("no engine panics in the bench mix");
    HubRun {
        elapsed,
        updates,
        checksum,
        digest_hits: stats.digest_hits,
        digest_rebuilds: stats.digest_rebuilds,
    }
}

/// Formats seconds with millisecond precision.
pub fn secs(summary: &RunSummary) -> String {
    format!("{:.3}", summary.elapsed.as_secs_f64())
}

/// Formats the average candidate count.
pub fn cands(summary: &RunSummary) -> String {
    format!("{:.0}", summary.avg_candidates)
}

/// Formats the average candidate memory in KB (Appendix F's unit).
pub fn mem_kb(summary: &RunSummary) -> String {
    format!("{:.1}", summary.avg_memory_bytes / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_instantiate_and_run() {
        let spec = WindowSpec::new(200, 5, 10).unwrap();
        for algo in [
            Algo::Sap,
            Algo::SapDynamic,
            Algo::SapEqual,
            Algo::MinTopK,
            Algo::KSkyband,
            Algo::Sma,
            Algo::Naive,
        ] {
            let s = measure(algo, Dataset::TimeU, 2_000, spec, 1);
            assert_eq!(s.slides, 200, "{}", algo.label());
        }
    }

    #[test]
    fn identical_inputs_identical_checksums() {
        let spec = WindowSpec::new(100, 5, 10).unwrap();
        let data = Dataset::Stock.generate(2_000, 3);
        let a = measure_on(Algo::Sap, &data, spec);
        let b = measure_on(Algo::MinTopK, &data, spec);
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn table_printer_roundtrip() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print(); // must not panic
    }

    #[test]
    fn hub_runs_agree_across_shard_counts() {
        let mix = hub_query_mix(17);
        assert_eq!(mix.len(), 17);
        let data = Dataset::Stock.generate(3_000, 11);
        let seq = run_hub_sequential(&mix, &data, 250);
        assert!(seq.updates > 0);
        assert!(seq.objects_per_sec(data.len()).is_finite());
        for shards in [1, 2, 4] {
            let par = run_hub_sharded(&mix, &data, 250, shards);
            assert_eq!(par.updates, seq.updates, "shards={shards}");
            assert_eq!(par.checksum, seq.checksum, "shards={shards}");
        }
    }

    #[test]
    fn timed_hub_runs_agree_across_shard_counts() {
        use sap_stream::ArrivalProcess;
        let mix = timed_query_mix(13);
        assert!(mix.iter().any(|(_, s)| matches!(s, QuerySpec::Timed(_))));
        assert!(mix.iter().any(|(_, s)| matches!(s, QuerySpec::Count(_))));
        let data = Dataset::Stock.generate_timed(3_000, 11, ArrivalProcess::poisson(8.0));
        let seq = run_timed_hub_sequential(&mix, &data, 250);
        assert!(seq.updates > 0);
        for shards in [1, 2, 4] {
            let par = run_timed_hub_sharded(&mix, &data, 250, shards);
            assert_eq!(par.updates, seq.updates, "shards={shards}");
            assert_eq!(par.checksum, seq.checksum, "shards={shards}");
        }
    }

    #[test]
    fn shared_runs_match_isolated_recomputation() {
        use sap_stream::ArrivalProcess;
        let mix = shared_query_mix(25);
        let data = Dataset::Stock.generate_timed(3_000, 11, ArrivalProcess::poisson(25.0));
        let iso = run_shared_isolated(&mix, &data, 250);
        assert!(iso.updates > 0);
        assert_eq!(iso.digest_hits, 0, "isolated adapters never share");
        let shared = run_shared_hub(&mix, &data, 250);
        assert_eq!(shared.updates, iso.updates);
        assert_eq!(
            shared.checksum, iso.checksum,
            "sharing must not change results"
        );
        assert!(
            shared.digest_hits > 0,
            "25 queries over 4 groups must share"
        );
        assert_eq!(shared.digest_rebuilds, 0, "all registered up front");
        for shards in [1, 2, 4] {
            let par = run_shared_hub_sharded(&mix, &data, 250, shards);
            assert_eq!(par.updates, iso.updates, "shards={shards}");
            assert_eq!(par.checksum, iso.checksum, "shards={shards}");
            assert!(par.digest_hits > 0, "shards={shards}");
        }
    }
}
