//! Shared harness for regenerating the SAP paper's evaluation (§6 and
//! Appendices D–F): workload construction, algorithm factories, and
//! paper-shaped table formatting.
//!
//! Scaling: the paper streams gigabytes through C++ on 2017 hardware; this
//! harness streams `|D|` objects (default 2×10⁵ per run) through Rust.
//! Parameters keep the paper's *ratios* (`k`, `s/n`, sweep shapes), so
//! relative behaviour — who wins, how costs scale along each axis — is
//! comparable even though absolute numbers differ. See EXPERIMENTS.md.

use sap_baselines::{KSkyband, MinTopK, NaiveTopK, Sma};
use sap_core::{Sap, SapConfig};
use sap_stream::generators::{Dataset, Workload};
use sap_stream::{run, RunSummary, SlidingTopK, WindowSpec};

/// Default stream length per measurement run.
pub const DEFAULT_LEN: usize = 200_000;

/// The default query of the paper's Table 1 mapped to harness scale:
/// `n = 10⁴`, `k = 100`, `s = 0.1%·n = 10`.
pub fn default_spec() -> WindowSpec {
    WindowSpec::new(10_000, 100, 10).expect("default spec is valid")
}

/// Algorithms compared in §6.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// SAP with the enhanced dynamic partition (the paper's "SAP").
    Sap,
    /// SAP with the plain dynamic partition ("DYNA").
    SapDynamic,
    /// SAP with the equal partition at `m*` ("EQUAL").
    SapEqual,
    /// MinTopK (Yang et al.).
    MinTopK,
    /// The one-pass k-skyband algorithm.
    KSkyband,
    /// SMA with the grid index.
    Sma,
    /// The naive re-scanning oracle.
    Naive,
}

impl Algo {
    /// Display name used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            Algo::Sap => "SAP",
            Algo::SapDynamic => "DYNA",
            Algo::SapEqual => "EQUAL",
            Algo::MinTopK => "minTopK",
            Algo::KSkyband => "k-skyband",
            Algo::Sma => "SMA",
            Algo::Naive => "naive",
        }
    }

    /// Instantiates the algorithm for a query.
    pub fn build(&self, spec: WindowSpec) -> Box<dyn SlidingTopK> {
        match self {
            Algo::Sap => Box::new(Sap::new(SapConfig::new(spec))),
            Algo::SapDynamic => Box::new(Sap::new(SapConfig::dynamic(spec))),
            Algo::SapEqual => Box::new(Sap::new(SapConfig::equal(spec, None))),
            Algo::MinTopK => Box::new(MinTopK::new(spec)),
            Algo::KSkyband => Box::new(KSkyband::new(spec)),
            Algo::Sma => Box::new(Sma::new(spec)),
            Algo::Naive => Box::new(NaiveTopK::new(spec)),
        }
    }
}

/// Runs one `(algorithm, dataset, spec)` measurement.
pub fn measure(algo: Algo, ds: Dataset, len: usize, spec: WindowSpec, seed: u64) -> RunSummary {
    let data = ds.generate(len, seed);
    let mut alg = algo.build(spec);
    run(alg.as_mut(), &data)
}

/// Runs a measurement on pre-generated data (reuse the stream across
/// algorithms so comparisons share inputs).
pub fn measure_on(algo: Algo, data: &[sap_stream::Object], spec: WindowSpec) -> RunSummary {
    let mut alg = algo.build(spec);
    run(alg.as_mut(), data)
}

/// Simple fixed-width table printer for the experiment binaries.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.into(),
        }
    }

    /// Appends one row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        println!("\n=== {} ===", self.title);
        let fmt_row = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("{}", line.join("  "));
        };
        fmt_row(&self.header);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            fmt_row(row);
        }
    }
}

/// Formats seconds with millisecond precision.
pub fn secs(summary: &RunSummary) -> String {
    format!("{:.3}", summary.elapsed.as_secs_f64())
}

/// Formats the average candidate count.
pub fn cands(summary: &RunSummary) -> String {
    format!("{:.0}", summary.avg_candidates)
}

/// Formats the average candidate memory in KB (Appendix F's unit).
pub fn mem_kb(summary: &RunSummary) -> String {
    format!("{:.1}", summary.avg_memory_bytes / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_instantiate_and_run() {
        let spec = WindowSpec::new(200, 5, 10).unwrap();
        for algo in [
            Algo::Sap,
            Algo::SapDynamic,
            Algo::SapEqual,
            Algo::MinTopK,
            Algo::KSkyband,
            Algo::Sma,
            Algo::Naive,
        ] {
            let s = measure(algo, Dataset::TimeU, 2_000, spec, 1);
            assert_eq!(s.slides, 200, "{}", algo.label());
        }
    }

    #[test]
    fn identical_inputs_identical_checksums() {
        let spec = WindowSpec::new(100, 5, 10).unwrap();
        let data = Dataset::Stock.generate(2_000, 3);
        let a = measure_on(Algo::Sap, &data, spec);
        let b = measure_on(Algo::MinTopK, &data, spec);
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn table_printer_roundtrip() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print(); // must not panic
    }
}
