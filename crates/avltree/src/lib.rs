//! An order-statistic AVL tree.
//!
//! The SAP paper builds two structures on AVL trees:
//!
//! * `P^k_m` — the running top-k of the newest partition — "uses a AVL-Tree
//!   to maintain the k objects with highest scores" (§3.1, Algorithm 1);
//! * the **S-AVL** (§5.1) — an AVL tree over the top entries of `k − ρ`
//!   stacks holding the meaningful objects of the front partition.
//!
//! Both need ordered insert/delete, min/max extraction, and (for diagnostics
//! and tests) rank queries, so the tree is augmented with subtree sizes.
//! Nodes live in an arena (`Vec`) with a free list: no per-node allocation,
//! no unsafe code, indices instead of pointers.
//!
//! ```
//! use sap_avltree::AvlMap;
//!
//! let mut t = AvlMap::new();
//! t.insert(5, "five");
//! t.insert(2, "two");
//! t.insert(8, "eight");
//! assert_eq!(t.min().map(|(k, _)| *k), Some(2));
//! assert_eq!(t.select(1).map(|(k, _)| *k), Some(5)); // rank 1 = second smallest
//! assert_eq!(t.rank(&8), 2);                          // two keys below 8
//! assert_eq!(t.remove(&5), Some("five"));
//! assert_eq!(t.len(), 2);
//! ```

mod tree;

pub use tree::{AvlMap, Iter, IterRev};

/// A set built on [`AvlMap`] with unit values.
#[derive(Debug, Clone)]
pub struct AvlSet<K: Ord> {
    map: AvlMap<K, ()>,
}

impl<K: Ord> Default for AvlSet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord> AvlSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        AvlSet { map: AvlMap::new() }
    }

    /// Creates an empty set with room for `cap` elements before the arena
    /// reallocates.
    pub fn with_capacity(cap: usize) -> Self {
        AvlSet {
            map: AvlMap::with_capacity(cap),
        }
    }

    /// Inserts `key`; returns `true` if it was not already present.
    pub fn insert(&mut self, key: K) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        self.map.remove(key).is_some()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.map.get(key).is_some()
    }

    /// Smallest element.
    pub fn min(&self) -> Option<&K> {
        self.map.min().map(|(k, _)| k)
    }

    /// Largest element.
    pub fn max(&self) -> Option<&K> {
        self.map.max().map(|(k, _)| k)
    }

    /// Removes and returns the smallest element.
    pub fn pop_min(&mut self) -> Option<K> {
        self.map.pop_min().map(|(k, _)| k)
    }

    /// Removes and returns the largest element.
    pub fn pop_max(&mut self) -> Option<K> {
        self.map.pop_max().map(|(k, _)| k)
    }

    /// The element with `rank` keys below it (0 = minimum).
    pub fn select(&self, rank: usize) -> Option<&K> {
        self.map.select(rank).map(|(k, _)| k)
    }

    /// Number of elements strictly below `key`.
    pub fn rank(&self, key: &K) -> usize {
        self.map.rank(key)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Removes all elements, keeping the arena.
    pub fn clear(&mut self) {
        self.map.clear()
    }

    /// Ascending iterator.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.map.iter().map(|(k, _)| k)
    }

    /// Descending iterator.
    pub fn iter_rev(&self) -> impl Iterator<Item = &K> {
        self.map.iter_rev().map(|(k, _)| k)
    }

    /// Estimated heap usage of the arena, for the paper's memory tables.
    pub fn memory_bytes(&self) -> usize {
        self.map.memory_bytes()
    }
}

#[cfg(test)]
mod set_tests {
    use super::*;

    #[test]
    fn basic_set_ops() {
        let mut s = AvlSet::new();
        assert!(s.insert(3));
        assert!(s.insert(1));
        assert!(!s.insert(3));
        assert_eq!(s.len(), 2);
        assert!(s.contains(&1));
        assert_eq!(s.min(), Some(&1));
        assert_eq!(s.max(), Some(&3));
        assert!(s.remove(&1));
        assert!(!s.remove(&1));
        assert_eq!(s.pop_min(), Some(3));
        assert!(s.is_empty());
    }

    #[test]
    fn select_and_rank() {
        let mut s = AvlSet::new();
        for x in [50, 10, 30, 20, 40] {
            s.insert(x);
        }
        assert_eq!(s.select(0), Some(&10));
        assert_eq!(s.select(4), Some(&50));
        assert_eq!(s.select(5), None);
        assert_eq!(s.rank(&10), 0);
        assert_eq!(s.rank(&35), 3);
        assert_eq!(s.rank(&100), 5);
    }
}
