//! The arena-based order-statistic AVL map.

use std::cmp::Ordering;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    value: V,
    left: u32,
    right: u32,
    height: u8,
    size: u32,
}

/// A sorted map implemented as an AVL tree with subtree-size augmentation
/// (an *order-statistic tree*): `select` and `rank` run in `O(log n)` in
/// addition to the usual ordered-map operations.
///
/// Nodes are stored in a `Vec<Option<Node>>` arena with an internal free
/// list; removing an element recycles its slot, so long-running
/// sliding-window structures reach a steady state with zero allocation per
/// operation. No unsafe code.
#[derive(Debug, Clone)]
pub struct AvlMap<K, V> {
    slots: Vec<Option<Node<K, V>>>,
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl<K: Ord, V> Default for AvlMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> AvlMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        AvlMap {
            slots: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Creates an empty map whose arena can hold `cap` entries before
    /// reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        AvlMap {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every entry but keeps the arena capacity.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.root = NIL;
        self.len = 0;
    }

    /// Estimated heap usage of the arena, for the paper's memory accounting
    /// (Tables 8–9).
    pub fn memory_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Option<Node<K, V>>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    #[inline]
    fn node(&self, idx: u32) -> &Node<K, V> {
        self.slots[idx as usize]
            .as_ref()
            .expect("live node index points at a freed slot")
    }

    #[inline]
    fn node_mut(&mut self, idx: u32) -> &mut Node<K, V> {
        self.slots[idx as usize]
            .as_mut()
            .expect("live node index points at a freed slot")
    }

    #[inline]
    fn subtree_size(&self, idx: u32) -> usize {
        if idx == NIL {
            0
        } else {
            self.node(idx).size as usize
        }
    }

    #[inline]
    fn height(&self, idx: u32) -> i32 {
        if idx == NIL {
            0
        } else {
            self.node(idx).height as i32
        }
    }

    fn alloc(&mut self, key: K, value: V) -> u32 {
        let node = Node {
            key,
            value,
            left: NIL,
            right: NIL,
            height: 1,
            size: 1,
        };
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Some(node);
            idx
        } else {
            self.slots.push(Some(node));
            (self.slots.len() - 1) as u32
        }
    }

    fn dealloc(&mut self, idx: u32) -> (K, V) {
        let node = self.slots[idx as usize]
            .take()
            .expect("deallocating an already freed slot");
        self.free.push(idx);
        (node.key, node.value)
    }

    #[inline]
    fn update(&mut self, idx: u32) {
        let (l, r) = {
            let n = self.node(idx);
            (n.left, n.right)
        };
        let h = 1 + self.height(l).max(self.height(r));
        let s = 1 + self.subtree_size(l) + self.subtree_size(r);
        let n = self.node_mut(idx);
        n.height = h as u8;
        n.size = s as u32;
    }

    #[inline]
    fn balance_factor(&self, idx: u32) -> i32 {
        let n = self.node(idx);
        self.height(n.left) - self.height(n.right)
    }

    fn rotate_right(&mut self, y: u32) -> u32 {
        let x = self.node(y).left;
        let t2 = self.node(x).right;
        self.node_mut(x).right = y;
        self.node_mut(y).left = t2;
        self.update(y);
        self.update(x);
        x
    }

    fn rotate_left(&mut self, x: u32) -> u32 {
        let y = self.node(x).right;
        let t2 = self.node(y).left;
        self.node_mut(y).left = x;
        self.node_mut(x).right = t2;
        self.update(x);
        self.update(y);
        y
    }

    fn rebalance(&mut self, idx: u32) -> u32 {
        self.update(idx);
        let bf = self.balance_factor(idx);
        if bf > 1 {
            let left = self.node(idx).left;
            if self.balance_factor(left) < 0 {
                let new_left = self.rotate_left(left);
                self.node_mut(idx).left = new_left;
            }
            self.rotate_right(idx)
        } else if bf < -1 {
            let right = self.node(idx).right;
            if self.balance_factor(right) > 0 {
                let new_right = self.rotate_right(right);
                self.node_mut(idx).right = new_right;
            }
            self.rotate_left(idx)
        } else {
            idx
        }
    }

    /// Inserts `key → value`. Returns the previous value if `key` was
    /// already present (the stored key is not replaced in that case).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let mut replaced = None;
        self.root = self.insert_at(self.root, key, value, &mut replaced);
        if replaced.is_none() {
            self.len += 1;
        }
        replaced
    }

    fn insert_at(&mut self, idx: u32, key: K, value: V, replaced: &mut Option<V>) -> u32 {
        if idx == NIL {
            return self.alloc(key, value);
        }
        match key.cmp(&self.node(idx).key) {
            Ordering::Less => {
                let l = self.node(idx).left;
                let nl = self.insert_at(l, key, value, replaced);
                self.node_mut(idx).left = nl;
            }
            Ordering::Greater => {
                let r = self.node(idx).right;
                let nr = self.insert_at(r, key, value, replaced);
                self.node_mut(idx).right = nr;
            }
            Ordering::Equal => {
                *replaced = Some(std::mem::replace(&mut self.node_mut(idx).value, value));
                return idx;
            }
        }
        self.rebalance(idx)
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let mut removed = None;
        self.root = self.remove_at(self.root, key, &mut removed);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn remove_at(&mut self, idx: u32, key: &K, removed: &mut Option<V>) -> u32 {
        if idx == NIL {
            return NIL;
        }
        match key.cmp(&self.node(idx).key) {
            Ordering::Less => {
                let l = self.node(idx).left;
                let nl = self.remove_at(l, key, removed);
                self.node_mut(idx).left = nl;
            }
            Ordering::Greater => {
                let r = self.node(idx).right;
                let nr = self.remove_at(r, key, removed);
                self.node_mut(idx).right = nr;
            }
            Ordering::Equal => {
                let (l, r) = {
                    let n = self.node(idx);
                    (n.left, n.right)
                };
                if l == NIL || r == NIL {
                    let child = if l == NIL { r } else { l };
                    let (_, v) = self.dealloc(idx);
                    *removed = Some(v);
                    return child;
                }
                // Two children: splice out the in-order successor (min of
                // the right subtree) and move its key/value into this node.
                let mut succ = None;
                let nr = self.remove_min_at(r, &mut succ);
                self.node_mut(idx).right = nr;
                let (sk, sv) = succ.expect("right subtree was non-empty");
                let n = self.node_mut(idx);
                n.key = sk;
                *removed = Some(std::mem::replace(&mut n.value, sv));
            }
        }
        self.rebalance(idx)
    }

    /// Removes the minimum node of the subtree rooted at `idx`, returning
    /// the new subtree root and handing the key/value pair to `out`.
    fn remove_min_at(&mut self, idx: u32, out: &mut Option<(K, V)>) -> u32 {
        let l = self.node(idx).left;
        if l == NIL {
            let r = self.node(idx).right;
            *out = Some(self.dealloc(idx));
            return r;
        }
        let nl = self.remove_min_at(l, out);
        self.node_mut(idx).left = nl;
        self.rebalance(idx)
    }

    fn remove_max_at(&mut self, idx: u32, out: &mut Option<(K, V)>) -> u32 {
        let r = self.node(idx).right;
        if r == NIL {
            let l = self.node(idx).left;
            *out = Some(self.dealloc(idx));
            return l;
        }
        let nr = self.remove_max_at(r, out);
        self.node_mut(idx).right = nr;
        self.rebalance(idx)
    }

    /// Smallest key with its value.
    pub fn min(&self) -> Option<(&K, &V)> {
        let mut idx = self.root;
        if idx == NIL {
            return None;
        }
        loop {
            let n = self.node(idx);
            if n.left == NIL {
                return Some((&n.key, &n.value));
            }
            idx = n.left;
        }
    }

    /// Largest key with its value.
    pub fn max(&self) -> Option<(&K, &V)> {
        let mut idx = self.root;
        if idx == NIL {
            return None;
        }
        loop {
            let n = self.node(idx);
            if n.right == NIL {
                return Some((&n.key, &n.value));
            }
            idx = n.right;
        }
    }

    /// Removes and returns the smallest entry.
    pub fn pop_min(&mut self) -> Option<(K, V)> {
        if self.root == NIL {
            return None;
        }
        let mut out = None;
        self.root = self.remove_min_at(self.root, &mut out);
        self.len -= 1;
        out
    }

    /// Removes and returns the largest entry.
    pub fn pop_max(&mut self) -> Option<(K, V)> {
        if self.root == NIL {
            return None;
        }
        let mut out = None;
        self.root = self.remove_max_at(self.root, &mut out);
        self.len -= 1;
        out
    }

    /// Looks up `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut idx = self.root;
        while idx != NIL {
            let n = self.node(idx);
            match key.cmp(&n.key) {
                Ordering::Less => idx = n.left,
                Ordering::Greater => idx = n.right,
                Ordering::Equal => return Some(&n.value),
            }
        }
        None
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let mut idx = self.root;
        while idx != NIL {
            let n = self.node(idx);
            match key.cmp(&n.key) {
                Ordering::Less => idx = n.left,
                Ordering::Greater => idx = n.right,
                Ordering::Equal => return Some(&mut self.node_mut(idx).value),
            }
        }
        None
    }

    /// The entry with exactly `rank` keys below it (0-based ascending).
    pub fn select(&self, mut rank: usize) -> Option<(&K, &V)> {
        if rank >= self.len {
            return None;
        }
        let mut idx = self.root;
        loop {
            let n = self.node(idx);
            let ls = self.subtree_size(n.left);
            if rank < ls {
                idx = n.left;
            } else if rank == ls {
                return Some((&n.key, &n.value));
            } else {
                rank -= ls + 1;
                idx = n.right;
            }
        }
    }

    /// Number of keys strictly less than `key`.
    pub fn rank(&self, key: &K) -> usize {
        let mut idx = self.root;
        let mut below = 0usize;
        while idx != NIL {
            let n = self.node(idx);
            match key.cmp(&n.key) {
                Ordering::Less => idx = n.left,
                Ordering::Greater => {
                    below += self.subtree_size(n.left) + 1;
                    idx = n.right;
                }
                Ordering::Equal => {
                    below += self.subtree_size(n.left);
                    break;
                }
            }
        }
        below
    }

    /// Ascending in-order iterator. Creation is allocation-free.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut stack = DescentStack::new();
        let mut idx = self.root;
        while idx != NIL {
            stack.push(idx);
            idx = self.node(idx).left;
        }
        Iter { map: self, stack }
    }

    /// Descending (reverse in-order) iterator. Creation is allocation-free.
    pub fn iter_rev(&self) -> IterRev<'_, K, V> {
        let mut stack = DescentStack::new();
        let mut idx = self.root;
        while idx != NIL {
            stack.push(idx);
            idx = self.node(idx).right;
        }
        IterRev { map: self, stack }
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        fn walk<K: Ord, V>(map: &AvlMap<K, V>, idx: u32) -> (i32, usize) {
            if idx == NIL {
                return (0, 0);
            }
            let n = map.node(idx);
            let (lh, ls) = walk(map, n.left);
            let (rh, rs) = walk(map, n.right);
            assert!((lh - rh).abs() <= 1, "AVL balance violated");
            assert_eq!(n.height as i32, 1 + lh.max(rh), "height cache wrong");
            assert_eq!(n.size as usize, 1 + ls + rs, "size cache wrong");
            if n.left != NIL {
                assert!(map.node(n.left).key < n.key, "BST order violated");
            }
            if n.right != NIL {
                assert!(map.node(n.right).key > n.key, "BST order violated");
            }
            (n.height as i32, n.size as usize)
        }
        let (_, total) = walk(self, self.root);
        assert_eq!(total, self.len, "len cache wrong");
    }
}

/// Fixed-capacity descent stack: an AVL tree with a `u32` arena holds at
/// most 2³² nodes, whose height is bounded by 1.44·log₂(2³²) < 47 — so 48
/// slots always suffice and iterator creation never allocates.
#[derive(Clone)]
struct DescentStack {
    buf: [u32; 48],
    len: u8,
}

impl DescentStack {
    #[inline]
    fn new() -> Self {
        DescentStack {
            buf: [0; 48],
            len: 0,
        }
    }

    #[inline]
    fn push(&mut self, idx: u32) {
        self.buf[self.len as usize] = idx;
        self.len += 1;
    }

    #[inline]
    fn pop(&mut self) -> Option<u32> {
        if self.len == 0 {
            None
        } else {
            self.len -= 1;
            Some(self.buf[self.len as usize])
        }
    }
}

/// Ascending in-order iterator over an [`AvlMap`].
pub struct Iter<'a, K, V> {
    map: &'a AvlMap<K, V>,
    stack: DescentStack,
}

impl<'a, K: Ord, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let idx = self.stack.pop()?;
        let n = self.map.node(idx);
        let mut r = n.right;
        while r != NIL {
            self.stack.push(r);
            r = self.map.node(r).left;
        }
        Some((&n.key, &n.value))
    }
}

/// Descending in-order iterator over an [`AvlMap`].
pub struct IterRev<'a, K, V> {
    map: &'a AvlMap<K, V>,
    stack: DescentStack,
}

impl<'a, K: Ord, V> Iterator for IterRev<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let idx = self.stack.pop()?;
        let n = self.map.node(idx);
        let mut l = n.left;
        while l != NIL {
            self.stack.push(l);
            l = self.map.node(l).right;
        }
        Some((&n.key, &n.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = AvlMap::new();
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.insert(2, "b"), None);
        assert_eq!(t.insert(1, "a2"), Some("a"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&1), Some(&"a2"));
        assert_eq!(t.remove(&1), Some("a2"));
        assert_eq!(t.remove(&1), None);
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    fn sequential_ascending_inserts_stay_balanced() {
        let mut t = AvlMap::new();
        for i in 0..1000 {
            t.insert(i, i * 2);
            if i % 97 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        // AVL height bound: h ≤ 1.44·log2(n + 2)
        let h = t.height(t.root) as f64;
        assert!(h <= 1.45 * (1002f64).log2(), "tree too tall: {h}");
        assert_eq!(t.len(), 1000);
        let collected: Vec<i32> = t.iter().map(|(k, _)| *k).collect();
        let expect: Vec<i32> = (0..1000).collect();
        assert_eq!(collected, expect);
    }

    #[test]
    fn descending_and_zigzag_inserts() {
        let mut t = AvlMap::new();
        for i in (0..500).rev() {
            t.insert(i, ());
        }
        t.check_invariants();
        let mut t2 = AvlMap::new();
        for i in 0..500 {
            let key = if i % 2 == 0 { i } else { 1000 - i };
            t2.insert(key, ());
        }
        t2.check_invariants();
    }

    #[test]
    fn remove_all_permutations_small() {
        // exhaustive over all removal orders of 6 elements
        let keys = [3, 1, 4, 0, 5, 2];
        fn permute(arr: &mut Vec<i32>, k: usize, out: &mut Vec<Vec<i32>>) {
            if k == arr.len() {
                out.push(arr.clone());
                return;
            }
            for i in k..arr.len() {
                arr.swap(k, i);
                permute(arr, k + 1, out);
                arr.swap(k, i);
            }
        }
        let mut orders = Vec::new();
        permute(&mut keys.to_vec(), 0, &mut orders);
        for order in orders {
            let mut t = AvlMap::new();
            for &k in &keys {
                t.insert(k, k);
            }
            for (step, &k) in order.iter().enumerate() {
                assert_eq!(t.remove(&k), Some(k));
                t.check_invariants();
                assert_eq!(t.len(), keys.len() - step - 1);
            }
            assert!(t.is_empty());
        }
    }

    #[test]
    fn pop_min_and_pop_max_drain_in_order() {
        let mut t = AvlMap::new();
        for x in [7, 3, 9, 1, 5, 8, 2] {
            t.insert(x, x * 10);
        }
        assert_eq!(t.pop_min(), Some((1, 10)));
        assert_eq!(t.pop_max(), Some((9, 90)));
        assert_eq!(t.pop_min(), Some((2, 20)));
        t.check_invariants();
        assert_eq!(t.len(), 4);
        let ks: Vec<i32> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(ks, vec![3, 5, 7, 8]);
    }

    #[test]
    fn select_rank_consistency() {
        let mut t = AvlMap::new();
        let keys = [42, 17, 99, 3, 56, 23, 71, 10];
        for &k in &keys {
            t.insert(k, ());
        }
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        for (i, &k) in sorted.iter().enumerate() {
            assert_eq!(t.select(i).map(|(k, _)| *k), Some(k));
            assert_eq!(t.rank(&k), i);
        }
        assert_eq!(t.select(keys.len()), None);
    }

    #[test]
    fn arena_recycles_slots() {
        let mut t = AvlMap::new();
        for i in 0..100 {
            t.insert(i, ());
        }
        let cap_before = t.slots.len();
        // churn: remove and re-add repeatedly
        for round in 0..50 {
            for i in 0..100 {
                t.remove(&i);
            }
            for i in 0..100 {
                t.insert(i + round, ());
            }
            for i in 0..100 {
                t.remove(&(i + round));
            }
            for i in 0..100 {
                t.insert(i, ());
            }
        }
        assert_eq!(t.slots.len(), cap_before, "arena grew despite recycling");
        t.check_invariants();
    }

    #[test]
    fn get_mut_updates_value() {
        let mut t = AvlMap::new();
        t.insert("k", 1);
        *t.get_mut(&"k").unwrap() += 10;
        assert_eq!(t.get(&"k"), Some(&11));
        assert_eq!(t.get_mut(&"missing"), None);
    }

    #[test]
    fn clear_keeps_working() {
        let mut t = AvlMap::new();
        for i in 0..10 {
            t.insert(i, ());
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.min(), None);
        t.insert(5, ());
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    fn iterator_on_empty() {
        let t: AvlMap<i32, ()> = AvlMap::new();
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.iter_rev().count(), 0);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
    }

    #[test]
    fn rev_iterator_is_descending() {
        let mut t = AvlMap::new();
        for x in [5, 1, 9, 3, 7, 2, 8] {
            t.insert(x, x * 10);
        }
        let fwd: Vec<i32> = t.iter().map(|(k, _)| *k).collect();
        let mut rev: Vec<i32> = t.iter_rev().map(|(k, _)| *k).collect();
        rev.reverse();
        assert_eq!(fwd, rev);
        assert_eq!(t.iter_rev().next().map(|(k, _)| *k), Some(9));
    }

    #[test]
    fn randomized_against_btreemap() {
        use std::collections::BTreeMap;
        // simple LCG so the test is deterministic without rand
        let mut state = 0x243F6A8885A308D3u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut t = AvlMap::new();
        let mut reference = BTreeMap::new();
        for step in 0..20_000 {
            let key = next() % 500;
            match next() % 4 {
                0 | 1 => {
                    assert_eq!(t.insert(key, step), reference.insert(key, step));
                }
                2 => {
                    assert_eq!(t.remove(&key), reference.remove(&key));
                }
                _ => {
                    assert_eq!(t.get(&key), reference.get(&key));
                }
            }
            if step % 4096 == 0 {
                t.check_invariants();
                assert_eq!(t.len(), reference.len());
                assert!(t
                    .iter()
                    .map(|(k, v)| (*k, *v))
                    .eq(reference.iter().map(|(k, v)| (*k, *v))));
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), reference.len());
        assert_eq!(t.min().map(|(k, _)| *k), reference.keys().next().copied());
        assert_eq!(
            t.max().map(|(k, _)| *k),
            reference.keys().next_back().copied()
        );
    }
}
