//! The grid file used by SMA (paper §2.1).
//!
//! SMA "uses a grid structure to index streaming data. When re-scanning of
//! the window happens, the grid structure enables it to access only a few
//! cells according to the coefficients of the preference function F."
//!
//! Our streams carry pre-evaluated scalar scores, so the grid degenerates to
//! a one-dimensional array of score buckets (DESIGN.md §4.5). Each bucket
//! holds its live objects in arrival order, which makes expiry a pop from
//! the bucket front. A re-scan walks buckets from the highest score down and
//! stops as soon as enough objects have been collected — everything in lower
//! buckets is provably below everything collected.

use std::collections::VecDeque;

use sap_stream::{Object, ScoreKey};

/// A 1-D score-bucketed grid over the live window.
#[derive(Debug)]
pub struct ScoreGrid {
    buckets: Vec<VecDeque<ScoreKey>>,
    lo: f64,
    hi: f64,
    len: usize,
    initialized: bool,
}

impl ScoreGrid {
    /// Creates a grid with `buckets` cells; the score range is calibrated
    /// from the first batch and padded, with out-of-range scores clamped to
    /// the edge cells.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets >= 1, "grid needs at least one bucket");
        ScoreGrid {
            buckets: vec![VecDeque::new(); buckets],
            lo: 0.0,
            hi: 1.0,
            len: 0,
            initialized: false,
        }
    }

    /// Number of live objects indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of cells.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn calibrate(&mut self, batch: &[Object]) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for o in batch {
            lo = lo.min(o.score);
            hi = hi.max(o.score);
        }
        if !lo.is_finite() || !hi.is_finite() {
            lo = 0.0;
            hi = 1.0;
        }
        let pad = (hi - lo).abs().max(1.0) * 0.5;
        self.lo = lo - pad;
        self.hi = hi + pad;
        self.initialized = true;
    }

    #[inline]
    fn bucket_of(&self, score: f64) -> usize {
        let b = self.buckets.len();
        if self.hi <= self.lo {
            return 0;
        }
        let t = (score - self.lo) / (self.hi - self.lo);
        ((t * b as f64) as isize).clamp(0, b as isize - 1) as usize
    }

    /// Indexes one batch of arrivals (ids must be increasing across calls —
    /// the stream order).
    pub fn insert_batch(&mut self, batch: &[Object]) {
        if !self.initialized {
            self.calibrate(batch);
        }
        for o in batch {
            let b = self.bucket_of(o.score);
            self.buckets[b].push_back(o.key());
        }
        self.len += batch.len();
    }

    /// Drops every object with `id < cutoff`. Cost: one front probe per
    /// bucket plus one pop per expired object — the grid-maintenance cost
    /// that is independent of `s` (§6.3).
    pub fn expire_below(&mut self, cutoff: u64) -> usize {
        let mut removed = 0usize;
        for bucket in &mut self.buckets {
            while let Some(front) = bucket.front() {
                if front.id < cutoff {
                    bucket.pop_front();
                    removed += 1;
                } else {
                    break;
                }
            }
        }
        self.len -= removed;
        removed
    }

    /// Collects at least `want` of the highest-scored live objects (all of
    /// them if fewer exist) into `out`, sorted descending. Returns the
    /// number of objects *scanned* (the re-scan cost). Exactness: buckets
    /// are visited from the top; once `want` objects are gathered after
    /// finishing a bucket, every uncollected object is in a strictly lower
    /// bucket and therefore below all collected ones.
    pub fn collect_top(&self, want: usize, out: &mut Vec<ScoreKey>) -> usize {
        out.clear();
        let mut scanned = 0usize;
        for bucket in self.buckets.iter().rev() {
            if !bucket.is_empty() {
                scanned += bucket.len();
                out.extend(bucket.iter().copied());
            }
            if out.len() >= want {
                break;
            }
        }
        out.sort_unstable_by(|a, b| b.cmp(a));
        scanned
    }

    /// Estimated bytes held by the bucket structures (grid memory is `O(n)`
    /// — SMA indexes the whole window, which is why the paper leaves it out
    /// of the candidate tables).
    pub fn memory_bytes(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<ScoreKey>())
            .sum::<usize>()
            + self.buckets.capacity() * std::mem::size_of::<VecDeque<ScoreKey>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(id: u64, score: f64) -> Object {
        Object::new(id, score)
    }

    #[test]
    fn insert_and_collect_top() {
        let mut g = ScoreGrid::new(16);
        let batch: Vec<Object> = (0..100).map(|i| obj(i, (i % 10) as f64)).collect();
        g.insert_batch(&batch);
        assert_eq!(g.len(), 100);
        let mut out = Vec::new();
        g.collect_top(5, &mut out);
        assert!(out.len() >= 5);
        // the five highest scores are the 9s
        assert!(out.iter().take(5).all(|k| k.score == 9.0));
        // descending order
        assert!(out.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn collect_top_is_exact_across_bucket_boundaries() {
        let mut g = ScoreGrid::new(4);
        let batch: Vec<Object> = (0..1000)
            .map(|i| obj(i, (i as f64 * 7.3) % 100.0))
            .collect();
        g.insert_batch(&batch);
        let mut out = Vec::new();
        g.collect_top(50, &mut out);
        let mut all: Vec<ScoreKey> = batch.iter().map(Object::key).collect();
        all.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(&out[..50], &all[..50], "top-50 must be exact");
    }

    #[test]
    fn expiry_pops_oldest() {
        let mut g = ScoreGrid::new(8);
        let batch: Vec<Object> = (0..50).map(|i| obj(i, (i % 5) as f64)).collect();
        g.insert_batch(&batch);
        let removed = g.expire_below(20);
        assert_eq!(removed, 20);
        assert_eq!(g.len(), 30);
        let mut out = Vec::new();
        g.collect_top(100, &mut out);
        assert!(out.iter().all(|k| k.id >= 20));
    }

    #[test]
    fn out_of_range_scores_clamp() {
        let mut g = ScoreGrid::new(8);
        g.insert_batch(&[obj(0, 10.0), obj(1, 20.0)]);
        // far outside the calibrated range
        g.insert_batch(&[obj(2, -1e9), obj(3, 1e9)]);
        assert_eq!(g.len(), 4);
        let mut out = Vec::new();
        g.collect_top(4, &mut out);
        assert_eq!(out[0].score, 1e9);
        assert_eq!(out[3].score, -1e9);
    }

    #[test]
    fn constant_scores_single_bucket() {
        let mut g = ScoreGrid::new(8);
        let batch: Vec<Object> = (0..20).map(|i| obj(i, 5.0)).collect();
        g.insert_batch(&batch);
        let mut out = Vec::new();
        g.collect_top(3, &mut out);
        // ties broken by recency: newest first
        assert_eq!(out[0].id, 19);
        assert_eq!(out[1].id, 18);
    }
}
