//! The one-pass k-skyband algorithm (Shen et al. \[19\]; paper §2.1).
//!
//! The candidate set holds every window object dominated by fewer than `k`
//! objects. When a new object `o_in` arrives, every candidate with a lower
//! score is (by definition) dominated by `o_in` — all candidates are older —
//! so their dominance counters are incremented and those reaching `k` are
//! evicted for good: their `k` dominators are all newer and will outlive
//! them. When an object expires it is simply deleted from the candidate set
//! if still present.
//!
//! The per-arrival cost is `Θ(n_d)` where `n_d` is the number of candidates
//! the new object dominates — logarithmic-ish on random-order streams but
//! `Θ(n)` on anti-correlated streams where every object is a skyband object
//! (the paper's Figure 1(a) pathology, reproduced by `Dataset::Decreasing`).

use std::collections::BTreeMap;

use sap_stream::{Object, OpStats, ScoreKey, SlidingTopK, WindowSpec};

use crate::common::{btreemap_bytes, top_k_desc, WindowRing};

/// One-pass k-skyband maintenance.
#[derive(Debug)]
pub struct KSkyband {
    spec: WindowSpec,
    /// Candidate → number of (newer, higher-scored) dominators seen so far.
    candidates: BTreeMap<ScoreKey, u32>,
    window: WindowRing,
    evict: Vec<ScoreKey>,
    result: Vec<Object>,
    stats: OpStats,
}

impl KSkyband {
    /// Creates a k-skyband maintainer for the given query.
    pub fn new(spec: WindowSpec) -> Self {
        KSkyband {
            spec,
            candidates: BTreeMap::new(),
            window: WindowRing::with_capacity(spec.n),
            evict: Vec::new(),
            result: Vec::with_capacity(spec.k),
            stats: OpStats::default(),
        }
    }

    fn insert_object(&mut self, o: &Object) {
        let key = o.key();
        let k = self.spec.k as u32;
        // Every candidate with a strictly lower score is dominated by `o`
        // (strict score, and `o` is the newest object). Equal-score
        // candidates are NOT dominated (strictness) — the range below
        // (score, 0) excludes exactly those.
        let bound = ScoreKey {
            score: o.score,
            id: 0,
        };
        self.evict.clear();
        for (ck, dom) in self.candidates.range_mut(..bound) {
            *dom += 1;
            self.stats.objects_scanned += 1;
            if *dom >= k {
                self.evict.push(*ck);
            }
        }
        for ck in self.evict.drain(..) {
            self.candidates.remove(&ck);
            self.stats.deletions += 1;
        }
        self.candidates.insert(key, 0);
        self.stats.insertions += 1;
    }
}

/// Default (no-op) durability hook: the engine is an exact function
/// of its window contents, so checkpoints restore it by replaying the
/// session-retained window.
impl sap_stream::CheckpointState for KSkyband {}

impl SlidingTopK for KSkyband {
    fn spec(&self) -> WindowSpec {
        self.spec
    }

    fn slide(&mut self, batch: &[Object]) -> &[Object] {
        debug_assert_eq!(batch.len(), self.spec.s, "driver must feed full slides");
        for o in batch {
            self.insert_object(o);
        }
        self.window.push_batch(batch);
        let n = self.spec.n;
        let candidates = &mut self.candidates;
        let stats = &mut self.stats;
        self.window.expire_to(n, |key| {
            if candidates.remove(&key).is_some() {
                stats.deletions += 1;
            }
        });
        top_k_desc(&self.candidates, self.spec.k, &mut self.result);
        &self.result
    }

    fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    fn memory_bytes(&self) -> usize {
        btreemap_bytes::<ScoreKey, u32>(self.candidates.len())
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn name(&self) -> &str {
        "k-skyband"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveTopK;
    use sap_stream::generators::{Dataset, Workload};
    use sap_stream::run_collecting;

    fn check_against_oracle(ds: Dataset, len: usize, n: usize, k: usize, s: usize, seed: u64) {
        let data = ds.generate(len, seed);
        let spec = WindowSpec::new(n, k, s).unwrap();
        let (_, got) = run_collecting(&mut KSkyband::new(spec), &data);
        let (_, expect) = run_collecting(&mut NaiveTopK::new(spec), &data);
        assert_eq!(got, expect, "{} n={n} k={k} s={s}", ds.name());
    }

    #[test]
    fn matches_oracle_random_stream() {
        check_against_oracle(Dataset::TimeU, 2000, 100, 5, 10, 1);
    }

    #[test]
    fn matches_oracle_decreasing_stream() {
        // the pathological case: every object is a skyband object
        check_against_oracle(Dataset::Decreasing, 600, 60, 4, 6, 2);
    }

    #[test]
    fn matches_oracle_increasing_and_ties() {
        check_against_oracle(Dataset::Increasing, 600, 60, 4, 6, 3);
        check_against_oracle(Dataset::Constant, 400, 40, 3, 4, 4);
    }

    #[test]
    fn matches_oracle_s_equals_one() {
        check_against_oracle(Dataset::TimeU, 500, 50, 3, 1, 5);
    }

    #[test]
    fn matches_oracle_tumbling() {
        check_against_oracle(Dataset::TimeU, 500, 50, 2, 50, 6);
    }

    #[test]
    fn candidate_set_is_skyband_sized_on_random_data() {
        // On order-independent streams the expected skyband size is
        // O(k · ln(n/k)) — far below n.
        let data = Dataset::TimeU.generate(20_000, 7);
        let spec = WindowSpec::new(2000, 10, 20).unwrap();
        let mut alg = KSkyband::new(spec);
        let summary = sap_stream::run(&mut alg, &data);
        let bound = 10.0 * (2000.0f64 / 10.0).ln() * 3.0; // 3x slack
        assert!(
            summary.avg_candidates < bound,
            "avg candidates {} above skyband bound {}",
            summary.avg_candidates,
            bound
        );
    }

    #[test]
    fn decreasing_stream_keeps_everything() {
        // Figure 1(a): anti-correlated scores → all n objects are skyband.
        let data = Dataset::Decreasing.generate(2000, 8);
        let spec = WindowSpec::new(200, 5, 10).unwrap();
        let mut alg = KSkyband::new(spec);
        let summary = sap_stream::run(&mut alg, &data);
        assert!(
            summary.avg_candidates > 195.0,
            "expected ~n candidates, got {}",
            summary.avg_candidates
        );
    }
}
