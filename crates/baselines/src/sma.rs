//! SMA — the multi-pass grid-indexed algorithm (Mouratidis et al. \[17\];
//! paper §2.1).
//!
//! SMA maintains a candidate set of the top-`k'` window objects with
//! `k ≤ k' ≤ k_max` (the customary `k_max = 2k`), pruned further by
//! dominance: a candidate dominated by `k` newer candidates can never be a
//! result and is dropped. All window objects are additionally indexed in a
//! [`ScoreGrid`]. When expiry shrinks the candidate set below `k`, SMA
//! re-scans the grid from the top cells down and rebuilds the candidate set
//! with the window's top-`k_max` — the expensive operation that dominates
//! its cost on score-decreasing streams (Figure 1(a), §6.3).

use std::collections::BTreeMap;

use sap_stream::{Object, OpStats, SapError, ScoreKey, SlidingTopK, WindowSpec};

use crate::common::{btreemap_bytes, top_k_desc, WindowRing};
use crate::grid::ScoreGrid;

/// Default number of grid cells (the original uses a small constant grid
/// over the data space).
pub const DEFAULT_GRID_BUCKETS: usize = 256;

/// The SMA algorithm.
#[derive(Debug)]
pub struct Sma {
    spec: WindowSpec,
    kmax: usize,
    grid: ScoreGrid,
    /// Candidate → dominance count (number of newer, higher-scored
    /// candidates observed since it joined).
    candidates: BTreeMap<ScoreKey, u32>,
    window: WindowRing,
    arrived: u64,
    rescan_buf: Vec<ScoreKey>,
    evict: Vec<ScoreKey>,
    result: Vec<Object>,
    stats: OpStats,
}

impl Sma {
    /// Creates SMA with the customary `k_max = 2k` and the default grid.
    pub fn new(spec: WindowSpec) -> Self {
        Self::with_params(spec, 2 * spec.k, DEFAULT_GRID_BUCKETS)
    }

    /// Creates SMA with explicit `k_max` (must be ≥ k) and grid resolution.
    pub fn with_params(spec: WindowSpec, kmax: usize, grid_buckets: usize) -> Self {
        Self::try_with_params(spec, kmax, grid_buckets).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`with_params`](Sma::with_params): rejects
    /// `k_max < k` and an empty grid through the unified error type (the
    /// rules live in `sap_stream::query` so builder-side and
    /// constructor-side validation cannot drift).
    pub fn try_with_params(
        spec: WindowSpec,
        kmax: usize,
        grid_buckets: usize,
    ) -> Result<Self, SapError> {
        sap_stream::query::check_sma_params(spec.k, Some(kmax), Some(grid_buckets))?;
        Ok(Sma {
            spec,
            kmax,
            grid: ScoreGrid::new(grid_buckets),
            candidates: BTreeMap::new(),
            window: WindowRing::with_capacity(spec.n),
            arrived: 0,
            rescan_buf: Vec::with_capacity(kmax * 2),
            evict: Vec::new(),
            result: Vec::with_capacity(spec.k),
            stats: OpStats::default(),
        })
    }

    /// Number of grid re-scans performed so far.
    pub fn rescan_count(&self) -> u64 {
        self.stats.rescans
    }

    fn insert_candidate(&mut self, o: &Object) {
        let key = o.key();
        let k = self.spec.k as u32;
        // Invariant: C is always the top-|C| of the window (minus dominated
        // never-result objects). An arrival below the current minimum
        // candidate is *discarded*, not stored — inserting it would pollute
        // C with non-top objects and mask the "candidates ran out, re-scan"
        // condition. (Objects discarded here are recovered by the next grid
        // re-scan if they ever climb back into the top-k_max.)
        if let Some(min) = self.candidates.keys().next() {
            if key < *min {
                return;
            }
        }
        // dominance bookkeeping: `o` dominates every lower-scored candidate
        let bound = ScoreKey {
            score: o.score,
            id: 0,
        };
        self.evict.clear();
        for (ck, dom) in self.candidates.range_mut(..bound) {
            *dom += 1;
            if *dom >= k {
                self.evict.push(*ck);
            }
        }
        for ck in self.evict.drain(..) {
            self.candidates.remove(&ck);
            self.stats.deletions += 1;
        }
        self.candidates.insert(key, 0);
        self.stats.insertions += 1;
        // cap at k_max
        while self.candidates.len() > self.kmax {
            let min = *self.candidates.keys().next().expect("non-empty");
            self.candidates.remove(&min);
            self.stats.deletions += 1;
        }
    }

    fn rescan(&mut self) {
        self.stats.rescans += 1;
        let scanned = self.grid.collect_top(self.kmax, &mut self.rescan_buf);
        self.stats.objects_scanned += scanned as u64;
        self.candidates.clear();
        for key in self.rescan_buf.iter().take(self.kmax) {
            self.candidates.insert(*key, 0);
            self.stats.insertions += 1;
        }
    }
}

/// Default (no-op) durability hook: the engine is an exact function
/// of its window contents, so checkpoints restore it by replaying the
/// session-retained window.
impl sap_stream::CheckpointState for Sma {}

impl SlidingTopK for Sma {
    fn spec(&self) -> WindowSpec {
        self.spec
    }

    fn slide(&mut self, batch: &[Object]) -> &[Object] {
        debug_assert_eq!(batch.len(), self.spec.s, "driver must feed full slides");
        // arrivals: index in the grid and try the candidate set
        self.grid.insert_batch(batch);
        for o in batch {
            self.insert_candidate(o);
        }
        self.arrived += batch.len() as u64;
        self.window.push_batch(batch);

        // expiry
        let n = self.spec.n;
        let candidates = &mut self.candidates;
        let stats = &mut self.stats;
        self.window.expire_to(n, |key| {
            if candidates.remove(&key).is_some() {
                stats.deletions += 1;
            }
        });
        let cutoff = self.arrived.saturating_sub(n as u64);
        self.grid.expire_below(cutoff);

        // re-scan when the candidate set no longer covers a full result
        if self.candidates.len() < self.spec.k && self.window.len() > self.candidates.len() {
            self.rescan();
        }

        top_k_desc(&self.candidates, self.spec.k, &mut self.result);
        &self.result
    }

    fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    fn memory_bytes(&self) -> usize {
        // SMA's working structures include the grid over the whole window —
        // the reason the paper reports no candidate counts for it.
        btreemap_bytes::<ScoreKey, u32>(self.candidates.len()) + self.grid.memory_bytes()
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn name(&self) -> &str {
        "SMA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveTopK;
    use sap_stream::generators::{Dataset, Workload};
    use sap_stream::run_collecting;

    fn check_against_oracle(ds: Dataset, len: usize, n: usize, k: usize, s: usize, seed: u64) {
        let data = ds.generate(len, seed);
        let spec = WindowSpec::new(n, k, s).unwrap();
        let (_, got) = run_collecting(&mut Sma::new(spec), &data);
        let (_, expect) = run_collecting(&mut NaiveTopK::new(spec), &data);
        assert_eq!(got, expect, "{} n={n} k={k} s={s}", ds.name());
    }

    #[test]
    fn matches_oracle_random() {
        check_against_oracle(Dataset::TimeU, 2000, 100, 5, 10, 1);
    }

    #[test]
    fn matches_oracle_decreasing() {
        check_against_oracle(Dataset::Decreasing, 800, 80, 5, 8, 2);
    }

    #[test]
    fn matches_oracle_increasing_ties_sawtooth() {
        check_against_oracle(Dataset::Increasing, 800, 80, 5, 8, 3);
        check_against_oracle(Dataset::Constant, 400, 40, 3, 4, 4);
        check_against_oracle(Dataset::Sawtooth { ramp: 23 }, 1000, 100, 5, 10, 5);
    }

    #[test]
    fn matches_oracle_small_and_large_kmax() {
        let data = Dataset::TimeU.generate(1500, 6);
        let spec = WindowSpec::new(100, 10, 10).unwrap();
        for kmax in [10, 15, 40] {
            let (_, got) = run_collecting(&mut Sma::with_params(spec, kmax, 64), &data);
            let (_, expect) = run_collecting(&mut NaiveTopK::new(spec), &data);
            assert_eq!(got, expect, "kmax={kmax}");
        }
    }

    #[test]
    fn rescans_frequent_on_decreasing_scores() {
        // Figure 1(a): when scores keep decreasing the candidate set keeps
        // expiring from the top and re-scans are frequent.
        let spec = WindowSpec::new(200, 5, 10).unwrap();
        let down = Dataset::Decreasing.generate(4000, 7);
        let mut alg = Sma::new(spec);
        sap_stream::run(&mut alg, &down);
        let down_rescans = alg.rescan_count();

        let up = Dataset::Increasing.generate(4000, 7);
        let mut alg = Sma::new(spec);
        sap_stream::run(&mut alg, &up);
        let up_rescans = alg.rescan_count();

        assert!(
            down_rescans > up_rescans.max(1) * 5,
            "decreasing {down_rescans} vs increasing {up_rescans}"
        );
    }

    #[test]
    fn candidate_set_capped_at_kmax() {
        let data = Dataset::TimeU.generate(3000, 8);
        let spec = WindowSpec::new(300, 7, 10).unwrap();
        let mut alg = Sma::new(spec);
        let summary = sap_stream::run(&mut alg, &data);
        assert!(summary.peak_candidates <= 14);
    }
}
