//! Shared plumbing for the baseline algorithms.

use std::collections::{BTreeMap, VecDeque};

use sap_stream::{Object, ScoreKey};

/// Estimated per-entry overhead of a `BTreeMap` node (amortized pointers,
/// node headers, and slack), used by the memory accounting of Appendix F.
/// The constant matches `std`'s B=6 layout within ~20%; what matters for the
/// paper's tables is that every algorithm is accounted with the same model.
pub(crate) const BTREE_ENTRY_OVERHEAD: usize = 16;

pub(crate) fn btreemap_bytes<K, V>(len: usize) -> usize {
    len * (std::mem::size_of::<K>() + std::mem::size_of::<V>() + BTREE_ENTRY_OVERHEAD)
}

/// The raw window ring: every live object's key in arrival order. Expiring a
/// slide pops the oldest `s` keys so algorithms can locate the candidates to
/// delete. This mirrors the window buffer every published implementation
/// keeps implicitly; per the paper's accounting convention it is *not*
/// counted as candidate memory (see DESIGN.md §4.8).
#[derive(Debug, Default)]
pub(crate) struct WindowRing {
    ring: VecDeque<ScoreKey>,
}

impl WindowRing {
    pub fn with_capacity(n: usize) -> Self {
        WindowRing {
            ring: VecDeque::with_capacity(n + 1),
        }
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn push_batch(&mut self, batch: &[Object]) {
        self.ring.extend(batch.iter().map(Object::key));
    }

    /// Pops every object older than the window of size `n`, invoking `f`
    /// with each expired key (oldest first).
    pub fn expire_to(&mut self, n: usize, mut f: impl FnMut(ScoreKey)) {
        while self.ring.len() > n {
            let key = self.ring.pop_front().expect("len checked");
            f(key);
        }
    }
}

/// Fills `out` with the top-`k` entries of a key-ordered candidate map, in
/// descending result order.
pub(crate) fn top_k_desc<V>(map: &BTreeMap<ScoreKey, V>, k: usize, out: &mut Vec<Object>) {
    out.clear();
    out.extend(map.keys().rev().take(k).map(|key| key.to_object()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_expires_oldest_first() {
        let mut ring = WindowRing::with_capacity(4);
        let batch: Vec<Object> = (0..6).map(|i| Object::new(i, i as f64)).collect();
        ring.push_batch(&batch[..4]);
        ring.push_batch(&batch[4..]);
        let mut expired = Vec::new();
        ring.expire_to(4, |k| expired.push(k.id));
        assert_eq!(expired, vec![0, 1]);
        assert_eq!(ring.len(), 4);
        ring.expire_to(0, |_| {});
        assert_eq!(ring.len(), 0);
    }

    #[test]
    fn top_k_desc_orders_correctly() {
        let mut map = BTreeMap::new();
        for (id, score) in [(1u64, 3.0), (2, 1.0), (3, 2.0)] {
            map.insert(ScoreKey { score, id }, ());
        }
        let mut out = Vec::new();
        top_k_desc(&map, 2, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].score, 3.0);
        assert_eq!(out[1].score, 2.0);
    }
}
