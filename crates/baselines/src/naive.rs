//! The naive multi-pass algorithm: re-scan the window every slide.
//!
//! This is the correctness oracle — `O(n)` per slide, no candidate
//! maintenance, no pruning, no way to be wrong. Every other algorithm in the
//! workspace is required (by tests) to produce byte-identical result
//! sequences.

use std::collections::VecDeque;

use sap_stream::{Object, OpStats, ScoreKey, SlidingTopK, WindowSpec};

/// Full re-scanning reference implementation.
#[derive(Debug)]
pub struct NaiveTopK {
    spec: WindowSpec,
    window: VecDeque<Object>,
    scratch: Vec<ScoreKey>,
    result: Vec<Object>,
    stats: OpStats,
}

impl NaiveTopK {
    /// Creates the oracle for the given query.
    pub fn new(spec: WindowSpec) -> Self {
        NaiveTopK {
            spec,
            window: VecDeque::with_capacity(spec.n + spec.s),
            scratch: Vec::with_capacity(spec.n + spec.s),
            result: Vec::with_capacity(spec.k),
            stats: OpStats::default(),
        }
    }
}

/// Default (no-op) durability hook: the engine is an exact function
/// of its window contents, so checkpoints restore it by replaying the
/// session-retained window.
impl sap_stream::CheckpointState for NaiveTopK {}

impl SlidingTopK for NaiveTopK {
    fn spec(&self) -> WindowSpec {
        self.spec
    }

    fn slide(&mut self, batch: &[Object]) -> &[Object] {
        debug_assert_eq!(batch.len(), self.spec.s, "driver must feed full slides");
        self.window.extend(batch.iter().copied());
        while self.window.len() > self.spec.n {
            self.window.pop_front();
        }

        // full re-scan: select the k largest keys
        self.stats.rescans += 1;
        self.stats.objects_scanned += self.window.len() as u64;
        self.scratch.clear();
        self.scratch.extend(self.window.iter().map(Object::key));
        let len = self.scratch.len();
        let k = self.spec.k.min(len);
        if k < len {
            self.scratch.select_nth_unstable(len - k);
            self.scratch.drain(..len - k);
        }
        self.scratch.sort_unstable_by(|a, b| b.cmp(a));
        self.result.clear();
        self.result
            .extend(self.scratch.iter().take(k).map(|key| key.to_object()));
        &self.result
    }

    fn candidate_count(&self) -> usize {
        // the naive algorithm's "candidate set" is the whole window
        self.window.len()
    }

    fn memory_bytes(&self) -> usize {
        self.window.capacity() * std::mem::size_of::<Object>()
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn name(&self) -> &str {
        "naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_stream::object::top_k_of;

    fn objects(scores: &[f64]) -> Vec<Object> {
        scores
            .iter()
            .enumerate()
            .map(|(i, &s)| Object::new(i as u64, s))
            .collect()
    }

    #[test]
    fn matches_reference_topk_on_each_slide() {
        let data = objects(&[5.0, 1.0, 9.0, 3.0, 7.0, 7.0, 2.0, 8.0, 4.0, 6.0, 0.5, 9.5]);
        let spec = WindowSpec::new(6, 2, 2).unwrap();
        let mut alg = NaiveTopK::new(spec);
        for (i, batch) in data.chunks_exact(2).enumerate() {
            let got = alg.slide(batch).to_vec();
            let hi = (i + 1) * 2;
            let lo = hi.saturating_sub(6);
            let expect = top_k_of(&data[lo..hi], 2);
            assert_eq!(got, expect, "slide {i}");
        }
    }

    #[test]
    fn warm_up_returns_partial_results() {
        let data = objects(&[1.0, 2.0]);
        let spec = WindowSpec::new(8, 4, 2).unwrap();
        let mut alg = NaiveTopK::new(spec);
        let got = alg.slide(&data);
        assert_eq!(got.len(), 2, "fewer than k objects: return what exists");
        assert_eq!(got[0].score, 2.0);
    }

    #[test]
    fn tumbling_window() {
        // s == n: the window is replaced wholesale each slide
        let data = objects(&[1.0, 2.0, 3.0, 9.0, 8.0, 7.0]);
        let spec = WindowSpec::new(3, 1, 3).unwrap();
        let mut alg = NaiveTopK::new(spec);
        assert_eq!(alg.slide(&data[..3])[0].score, 3.0);
        assert_eq!(alg.slide(&data[3..])[0].score, 9.0);
    }

    #[test]
    fn counts_rescans() {
        let data = objects(&[1.0; 10]);
        let spec = WindowSpec::new(5, 2, 5).unwrap();
        let mut alg = NaiveTopK::new(spec);
        alg.slide(&data[..5]);
        alg.slide(&data[5..]);
        assert_eq!(alg.stats().rescans, 2);
        assert_eq!(alg.stats().objects_scanned, 10);
    }
}
