//! Baseline continuous top-k algorithms from the paper's related work (§2.1).
//!
//! These are the competitors the SAP evaluation compares against:
//!
//! * [`NaiveTopK`] — re-scans the whole window on every slide; the
//!   correctness oracle every other algorithm is tested against;
//! * [`KSkyband`] — the one-pass k-skyband algorithm of Shen et al. [19]:
//!   maintains every window object dominated by fewer than `k` others;
//! * [`MinTopK`] — Yang et al. [25]: exploits the slide size `s` by keeping,
//!   per future window, a predicted top-k result set (equivalently the
//!   k-skyband at slide granularity — see DESIGN.md §4.4);
//! * [`Sma`] — Mouratidis et al. [17]: a multi-pass algorithm keeping the
//!   top-`k_max` window objects as candidates over a grid index, re-scanning
//!   the grid whenever the candidate set drops below `k`.
//!
//! All four implement [`sap_stream::SlidingTopK`] and return results
//! identical to the oracle (enforced by this crate's tests and by the
//! workspace integration tests).

mod common;
pub mod grid;
pub mod kskyband;
pub mod mintopk;
pub mod naive;
pub mod sma;

pub use grid::ScoreGrid;
pub use kskyband::KSkyband;
pub use mintopk::MinTopK;
pub use naive::NaiveTopK;
pub use sma::Sma;
