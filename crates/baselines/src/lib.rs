//! Baseline continuous top-k algorithms from the paper's related work (§2.1).
//!
//! These are the competitors the SAP evaluation compares against:
//!
//! * [`NaiveTopK`] — re-scans the whole window on every slide; the
//!   correctness oracle every other algorithm is tested against;
//! * [`KSkyband`] — the one-pass k-skyband algorithm of Shen et al. \[19\]:
//!   maintains every window object dominated by fewer than `k` others;
//! * [`MinTopK`] — Yang et al. \[25\]: exploits the slide size `s` by keeping,
//!   per future window, a predicted top-k result set (equivalently the
//!   k-skyband at slide granularity — see DESIGN.md §4.4);
//! * [`Sma`] — Mouratidis et al. \[17\]: a multi-pass algorithm keeping the
//!   top-`k_max` window objects as candidates over a grid index, re-scanning
//!   the grid whenever the candidate set drops below `k`.
//!
//! All four implement [`sap_stream::SlidingTopK`] and return results
//! identical to the oracle (enforced by this crate's tests and by the
//! workspace integration tests).

mod common;
pub mod grid;
pub mod kskyband;
pub mod mintopk;
pub mod naive;
pub mod sma;

pub use grid::ScoreGrid;
pub use kskyband::KSkyband;
pub use mintopk::MinTopK;
pub use naive::NaiveTopK;
pub use sma::Sma;

use sap_stream::{AlgorithmKind, SapError, SlidingTopK, WindowSpec};

/// Constructs the baseline selected by a query-layer [`AlgorithmKind`].
/// Returns `None` for [`AlgorithmKind::Sap`], which is built by the
/// engine crate; `Some(Err(_))` reports invalid baseline parameters.
///
/// The box is `Send` so built engines can cross into a
/// [`ShardedHub`](sap_stream::ShardedHub) worker thread; it coerces to a
/// plain `Box<dyn SlidingTopK>` wherever `Send` is not needed.
pub fn from_kind(
    spec: WindowSpec,
    kind: &AlgorithmKind,
) -> Option<Result<Box<dyn SlidingTopK + Send>, SapError>> {
    match *kind {
        AlgorithmKind::Sap { .. } => None,
        AlgorithmKind::Naive => Some(Ok(Box::new(NaiveTopK::new(spec)))),
        AlgorithmKind::KSkyband => Some(Ok(Box::new(KSkyband::new(spec)))),
        AlgorithmKind::MinTopK => Some(Ok(Box::new(MinTopK::new(spec)))),
        AlgorithmKind::Sma { kmax, grid_buckets } => {
            let kmax = kmax.unwrap_or(2 * spec.k);
            let buckets = grid_buckets.unwrap_or(sma::DEFAULT_GRID_BUCKETS);
            Some(Sma::try_with_params(spec, kmax, buckets).map(|a| Box::new(a) as _))
        }
    }
}

#[cfg(test)]
mod factory_tests {
    use super::*;

    #[test]
    fn from_kind_builds_every_baseline() {
        let spec = WindowSpec::new(100, 5, 10).unwrap();
        for (kind, name) in [
            (AlgorithmKind::Naive, "naive"),
            (AlgorithmKind::KSkyband, "k-skyband"),
            (AlgorithmKind::MinTopK, "MinTopK"),
            (AlgorithmKind::sma(), "SMA"),
        ] {
            let alg = from_kind(spec, &kind)
                .expect("baseline kind")
                .expect("valid");
            assert_eq!(alg.name(), name);
            assert_eq!(alg.spec(), spec);
        }
    }

    #[test]
    fn from_kind_rejects_bad_sma_params() {
        let spec = WindowSpec::new(100, 10, 10).unwrap();
        let built = from_kind(
            spec,
            &AlgorithmKind::Sma {
                kmax: Some(3),
                grid_buckets: None,
            },
        )
        .unwrap();
        match built {
            Err(e) => assert_eq!(e, SapError::KMaxTooSmall { kmax: 3, k: 10 }),
            Ok(_) => panic!("undersized k_max must be rejected"),
        }
    }

    #[test]
    fn from_kind_defers_sap_to_the_engine_crate() {
        let spec = WindowSpec::new(100, 5, 10).unwrap();
        assert!(from_kind(spec, &AlgorithmKind::sap()).is_none());
    }
}
