//! MinTopK (Yang et al. \[25\]; paper §2.1 and Figure 2).
//!
//! MinTopK maintains, for the current window and each of the `m − 1` future
//! windows it overlaps, a *predicted result set* `R_i` — the top-k of the
//! objects that will still be alive in window `W_i` — plus a lower-bound
//! pointer `lbp` per window. The union `∪R_i` is the candidate set; objects
//! outside it are discarded on arrival.
//!
//! **Equivalent formulation used here** (see DESIGN.md §4.4): because
//! `R_i` is the top-k of the *slide suffix* `[i, newest]`, an object is a
//! candidate iff fewer than `k` objects in its own slide or any newer slide
//! have a higher score — the k-skyband at slide granularity. The
//! implementation keeps that set in a score-ordered map with per-candidate
//! dominance counters, updated by one merge pass of each new slide's top
//! `min(s, k)` against the candidate list. Candidate set, results, and the
//! `O(n/s + log |C|)` worst-case incremental cost are identical to the
//! lbp-table formulation; so is the characteristic sensitivity to small `s`.

use std::collections::{BTreeMap, VecDeque};

use sap_stream::{Object, OpStats, ScoreKey, SlidingTopK, WindowSpec};

use crate::common::{btreemap_bytes, top_k_desc};

/// The MinTopK algorithm.
#[derive(Debug)]
pub struct MinTopK {
    spec: WindowSpec,
    /// Candidate → number of counted dominators from its slide-suffix.
    candidates: BTreeMap<ScoreKey, u32>,
    /// Per-slide keys inserted as candidates, for expiry (oldest in front).
    slides: VecDeque<Vec<ScoreKey>>,
    batch_top: Vec<ScoreKey>,
    evict: Vec<ScoreKey>,
    result: Vec<Object>,
    /// Recycled per-slide key list: the expired slide's `Vec` becomes the
    /// next slide's, so steady-state slides never allocate one.
    spare: Vec<ScoreKey>,
    stats: OpStats,
}

impl MinTopK {
    /// Creates a MinTopK instance for the given query.
    pub fn new(spec: WindowSpec) -> Self {
        MinTopK {
            spec,
            candidates: BTreeMap::new(),
            slides: VecDeque::with_capacity(spec.slides_per_window() + 1),
            batch_top: Vec::with_capacity(spec.s.min(spec.k)),
            evict: Vec::new(),
            result: Vec::with_capacity(spec.k),
            spare: Vec::with_capacity(spec.s.min(spec.k)),
            stats: OpStats::default(),
        }
    }
}

/// Default (no-op) durability hook: the engine is an exact function
/// of its window contents, so checkpoints restore it by replaying the
/// session-retained window.
impl sap_stream::CheckpointState for MinTopK {}

impl SlidingTopK for MinTopK {
    fn spec(&self) -> WindowSpec {
        self.spec
    }

    fn slide(&mut self, batch: &[Object]) -> &[Object] {
        debug_assert_eq!(batch.len(), self.spec.s, "driver must feed full slides");
        let k = self.spec.k;
        let c = self.spec.s.min(k);

        // Only the top-min(s,k) of a slide can ever join a predicted result
        // set (§2.1: "only the top-k objects among these s objects have the
        // chance to become k-skyband").
        self.batch_top.clear();
        self.batch_top.extend(batch.iter().map(Object::key));
        self.batch_top.sort_unstable_by(|a, b| b.cmp(a));
        self.batch_top.truncate(c);

        // Merge pass: every existing candidate below the j-th batch key
        // gains j dominators (the j batch-top objects above it — these are
        // in a strictly newer slide). A candidate that accumulates k
        // dominators leaves every predicted result set and is evicted.
        self.evict.clear();
        {
            let iter = self
                .candidates
                .range_mut(..self.batch_top[0])
                .rev()
                .peekable();
            let mut j = 1usize; // batch keys above the current candidate
            for (ck, dom) in iter {
                while j < c && *ck < self.batch_top[j] {
                    j += 1;
                }
                self.stats.objects_scanned += 1;
                *dom += j as u32;
                if *dom >= k as u32 {
                    self.evict.push(*ck);
                }
            }
        }
        for ck in self.evict.drain(..) {
            self.candidates.remove(&ck);
            self.stats.deletions += 1;
        }

        // Insert the slide's own candidates: the i-th highest has i
        // same-slide objects above it (which count toward its suffix
        // dominators). With c ≤ k these all start below the threshold.
        // The key list recycles the previously expired slide's Vec.
        let mut inserted = std::mem::take(&mut self.spare);
        debug_assert!(inserted.is_empty());
        for (i, key) in self.batch_top.iter().enumerate() {
            self.candidates.insert(*key, i as u32);
            self.stats.insertions += 1;
            inserted.push(*key);
        }
        self.slides.push_back(inserted);

        // Expire the slide that left the window, keeping its key list for
        // the next slide to fill.
        if self.slides.len() > self.spec.slides_per_window() {
            let mut old = self.slides.pop_front().expect("len checked");
            for key in old.drain(..) {
                if self.candidates.remove(&key).is_some() {
                    self.stats.deletions += 1;
                }
            }
            self.spare = old;
        }

        top_k_desc(&self.candidates, k, &mut self.result);
        &self.result
    }

    fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    fn memory_bytes(&self) -> usize {
        // candidate map + the per-predicted-window bookkeeping (our
        // slide-key lists play the role of the lbp table: one entry per
        // candidate plus one list header per window).
        btreemap_bytes::<ScoreKey, u32>(self.candidates.len())
            + self.slides.len() * std::mem::size_of::<Vec<ScoreKey>>()
            + self
                .slides
                .iter()
                .map(|v| v.capacity() * std::mem::size_of::<ScoreKey>())
                .sum::<usize>()
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn name(&self) -> &str {
        "MinTopK"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveTopK;
    use sap_stream::generators::{Dataset, Workload};
    use sap_stream::run_collecting;

    fn check_against_oracle(ds: Dataset, len: usize, n: usize, k: usize, s: usize, seed: u64) {
        let data = ds.generate(len, seed);
        let spec = WindowSpec::new(n, k, s).unwrap();
        let (_, got) = run_collecting(&mut MinTopK::new(spec), &data);
        let (_, expect) = run_collecting(&mut NaiveTopK::new(spec), &data);
        assert_eq!(got, expect, "{} n={n} k={k} s={s}", ds.name());
    }

    #[test]
    fn matches_oracle_random() {
        check_against_oracle(Dataset::TimeU, 2000, 100, 5, 10, 1);
    }

    #[test]
    fn matches_oracle_s_less_than_k() {
        check_against_oracle(Dataset::TimeU, 1500, 120, 12, 4, 2);
    }

    #[test]
    fn matches_oracle_s_greater_than_k() {
        check_against_oracle(Dataset::TimeU, 1500, 120, 3, 40, 3);
    }

    #[test]
    fn matches_oracle_s_equals_one() {
        check_against_oracle(Dataset::TimeU, 600, 50, 4, 1, 4);
    }

    #[test]
    fn matches_oracle_adversarial_streams() {
        check_against_oracle(Dataset::Decreasing, 800, 80, 5, 8, 5);
        check_against_oracle(Dataset::Increasing, 800, 80, 5, 8, 6);
        check_against_oracle(Dataset::Constant, 400, 40, 3, 4, 7);
        check_against_oracle(Dataset::Sawtooth { ramp: 37 }, 1200, 120, 6, 10, 8);
    }

    #[test]
    fn matches_oracle_tumbling() {
        check_against_oracle(Dataset::TimeU, 600, 30, 3, 30, 9);
    }

    #[test]
    fn figure2_worked_example() {
        // Figure 2: n = 21, k = 2, s = 3. The figure's predicted result
        // sets pin down which slide each high scorer arrives in:
        // R7_1 = R7_2 = {94,93} → 94,93 ∈ s2; R7_3 = {92,91} → 92 ∈ s3;
        // R7_4..R7_6 = {91,89} → 89 ∈ s6; R7_7 = {91,82} → 91,82 ∈ s7.
        // Candidate set for W1 = {94, 93, 92, 91, 89, 82}.
        let scores = [
            60.0, 61.0, 62.0, // s1
            94.0, 93.0, 63.0, // s2
            92.0, 64.0, 65.0, // s3
            66.0, 67.0, 68.0, // s4
            69.0, 70.0, 71.0, // s5
            89.0, 72.0, 73.0, // s6
            91.0, 82.0, 74.0, // s7
        ];
        let data: Vec<Object> = scores
            .iter()
            .enumerate()
            .map(|(i, &sc)| Object::new(i as u64, sc))
            .collect();
        let spec = WindowSpec::new(21, 2, 3).unwrap();
        let mut alg = MinTopK::new(spec);
        let mut last: Vec<Object> = Vec::new();
        for batch in data.chunks_exact(3) {
            last = alg.slide(batch).to_vec();
        }
        // the current result: top-2 of the full window W1
        assert_eq!(last[0].score, 94.0);
        assert_eq!(last[1].score, 93.0);
        // candidate set = ∪ R7_i exactly as the paper lists it
        let mut cand: Vec<f64> = alg.candidates.keys().map(|k| k.score).collect();
        cand.sort_unstable_by(f64::total_cmp);
        assert_eq!(cand, vec![82.0, 89.0, 91.0, 92.0, 93.0, 94.0]);

        // Slide to W2 with s8 = {90, 84, 78} (the paper walks these three):
        // 90 joins, evicting 89 and 82; 84 joins (for the future window
        // W8); 78 is discarded outright. New candidate set per Figure 2(b):
        // {94, 93, 92, 91, 90, 84}.
        let s8: Vec<Object> = [90.0, 84.0, 78.0]
            .iter()
            .enumerate()
            .map(|(i, &sc)| Object::new(21 + i as u64, sc))
            .collect();
        let res = alg.slide(&s8).to_vec();
        assert_eq!(res[0].score, 94.0);
        assert_eq!(res[1].score, 93.0);
        let mut cand: Vec<f64> = alg.candidates.keys().map(|k| k.score).collect();
        cand.sort_unstable_by(f64::total_cmp);
        assert_eq!(cand, vec![84.0, 90.0, 91.0, 92.0, 93.0, 94.0]);
    }

    #[test]
    fn candidate_bound_respected() {
        // |C| ≤ n·k / max(s, k) (§2.1)
        let data = Dataset::TimeU.generate(30_000, 11);
        for (n, k, s) in [(1000, 10, 50), (1000, 50, 10), (2000, 5, 5)] {
            let spec = WindowSpec::new(n, k, s).unwrap();
            let mut alg = MinTopK::new(spec);
            let summary = sap_stream::run(&mut alg, &data);
            let bound = (n * k) as f64 / s.max(k) as f64 + k as f64;
            assert!(
                summary.peak_candidates as f64 <= bound,
                "n={n} k={k} s={s}: peak {} > bound {bound}",
                summary.peak_candidates
            );
        }
    }

    #[test]
    fn small_s_keeps_more_candidates_than_large_s() {
        let data = Dataset::TimeU.generate(20_000, 13);
        let spec_small = WindowSpec::new(1000, 20, 5).unwrap();
        let spec_large = WindowSpec::new(1000, 20, 100).unwrap();
        let small = sap_stream::run(&mut MinTopK::new(spec_small), &data);
        let large = sap_stream::run(&mut MinTopK::new(spec_large), &data);
        assert!(
            small.avg_candidates > large.avg_candidates * 1.5,
            "expected s-sensitivity: {} vs {}",
            small.avg_candidates,
            large.avg_candidates
        );
    }
}
