//! Shared count plane equivalence: a count-based query served by the
//! geometry-grouped fan-out (`HubExt::register_grouped`) must produce
//! the **same results** as an isolated registration
//! (`HubExt::register`) and as a brute-force sliding-window oracle —
//! for SAP and all four baselines, at arbitrary registration offsets
//! (registrations land mid-slide, founding new geometry classes, and on
//! slide boundaries, joining live ones), through mid-stream
//! register/unregister churn, and on the `ShardedHub` at 1, 2, and 8
//! shards (count groups are shard-local, like slide groups). A
//! checkpoint cut through a **warm** count group (open slide partially
//! filled) must restore into either hub flavor and continue
//! byte-identically.

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;

use sap::prelude::*;

mod common;
use common::fold_all;

fn stream(scores: &[u8]) -> Vec<Object> {
    scores
        .iter()
        .enumerate()
        // id 1000+i: external ids need not start at 0 — the group ring
        // must translate ordinals to whatever ids the stream carries
        .map(|(i, &score)| Object::new(1_000 + i as u64, (score % 13) as f64))
        .collect()
}

fn all_kinds() -> [AlgorithmKind; 5] {
    [
        AlgorithmKind::sap(),
        AlgorithmKind::Naive,
        AlgorithmKind::KSkyband,
        AlgorithmKind::MinTopK,
        AlgorithmKind::sma(),
    ]
}

/// Brute-force count-window oracle: top-k of the last `n` objects after
/// `(j + 1) · s` arrivals, ties to the higher id.
fn oracle(seen: &[Object], n: usize, k: usize) -> Vec<Object> {
    let lo = seen.len().saturating_sub(n);
    let mut alive = seen[lo..].to_vec();
    alive.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(b.id.cmp(&a.id)));
    alive.truncate(k);
    alive
}

/// The scripted schedule every surface replays: register `early`
/// queries, publish half the stream in ragged chunks (so later
/// registrations sit at arbitrary offsets mod every `s`), unregister one
/// query and register the rest, publish the remainder. Returns per-query
/// event checksums.
struct Schedule<'a> {
    queries: &'a [Query],
    early: usize,
    data: &'a [Object],
    cuts: &'a [usize],
}

impl Schedule<'_> {
    fn chunks(&self, lo: usize, hi: usize) -> Vec<&[Object]> {
        let mut out = Vec::new();
        let mut offset = lo;
        let mut turn = 0usize;
        while offset < hi {
            let take = if self.cuts.is_empty() {
                1
            } else {
                self.cuts[turn % self.cuts.len()]
            }
            .min(hi - offset);
            turn += 1;
            out.push(&self.data[offset..offset + take]);
            offset += take;
        }
        out
    }

    /// Sequential hub; `grouped` picks the registration path and
    /// `sharing` the result-class knob value before each registration
    /// phase (the knob only affects future registrations, so `(false,
    /// true)` produces a mixed classed/unclassed population).
    fn run_hub(
        &self,
        grouped: bool,
        sharing: (bool, bool),
    ) -> (BTreeMap<QueryId, u64>, Option<QueryId>, HubStats) {
        let mut hub = Hub::new();
        let register = |hub: &mut Hub, q: &Query| {
            if grouped {
                hub.register_grouped(q).unwrap()
            } else {
                hub.register(q).unwrap()
            }
        };
        let mut sums = BTreeMap::new();
        hub.set_result_class_sharing(sharing.0);
        for q in &self.queries[..self.early] {
            register(&mut hub, q);
        }
        let mid = self.data.len() / 2;
        for chunk in self.chunks(0, mid) {
            let updates = hub.publish(chunk);
            fold_all(&mut sums, updates);
        }
        let ids: Vec<QueryId> = hub.query_ids().collect();
        let dropped = (ids.len() > 1).then(|| ids[0]);
        if let Some(id) = dropped {
            hub.unregister(id).expect("registered in phase one");
        }
        hub.set_result_class_sharing(sharing.1);
        for q in &self.queries[self.early..] {
            register(&mut hub, q);
        }
        for chunk in self.chunks(mid, self.data.len()) {
            let updates = hub.publish(chunk);
            fold_all(&mut sums, updates);
        }
        (sums, dropped, hub.stats())
    }

    /// Sharded hub, all queries on the shared count plane.
    fn run_sharded(
        &self,
        shards: usize,
        class_sharing: bool,
    ) -> (BTreeMap<QueryId, u64>, Option<QueryId>, HubStats) {
        let mut hub = ShardedHub::new(shards);
        let mut sums = BTreeMap::new();
        if !class_sharing {
            hub.set_result_class_sharing(false).unwrap();
        }
        for q in &self.queries[..self.early] {
            hub.register_grouped(q).unwrap();
        }
        let mid = self.data.len() / 2;
        for chunk in self.chunks(0, mid) {
            hub.publish(chunk).unwrap();
            fold_all(&mut sums, hub.drain().unwrap());
        }
        let ids: Vec<QueryId> = hub.query_ids().collect();
        let dropped = (ids.len() > 1).then(|| ids[0]);
        if let Some(id) = dropped {
            hub.unregister(id).expect("registered in phase one");
        }
        for q in &self.queries[self.early..] {
            hub.register_grouped(q).unwrap();
        }
        for chunk in self.chunks(mid, self.data.len()) {
            hub.publish(chunk).unwrap();
            fold_all(&mut sums, hub.drain().unwrap());
        }
        let stats = hub.stats().unwrap();
        (sums, dropped, stats)
    }

    /// Async hub under a seeded adversarial schedule, all queries on the
    /// shared count plane (classed serving inside worker bursts).
    fn run_async(
        &self,
        shards: usize,
        workers: usize,
        seed: u64,
    ) -> (BTreeMap<QueryId, u64>, Option<QueryId>, HubStats) {
        let mut hub =
            AsyncHub::with_scheduler(shards, workers, Box::new(SeededScheduler::new(seed)));
        let mut sums = BTreeMap::new();
        for q in &self.queries[..self.early] {
            hub.register_grouped(q).unwrap();
        }
        let mid = self.data.len() / 2;
        for chunk in self.chunks(0, mid) {
            hub.publish(chunk).expect("shards alive");
            fold_all(&mut sums, hub.drain().expect("shards alive"));
        }
        let ids: Vec<QueryId> = hub.query_ids().collect();
        let dropped = (ids.len() > 1).then(|| ids[0]);
        if let Some(id) = dropped {
            hub.unregister(id).expect("registered in phase one");
        }
        for q in &self.queries[self.early..] {
            hub.register_grouped(q).unwrap();
        }
        for chunk in self.chunks(mid, self.data.len()) {
            hub.publish(chunk).expect("shards alive");
            fold_all(&mut sums, hub.drain().expect("shards alive"));
        }
        hub.flush().expect("shards alive");
        fold_all(&mut sums, hub.drain().expect("shards alive"));
        let stats = hub.stats().expect("shards alive");
        (sums, dropped, stats)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The acceptance anchor: one grouped query — inside a group whose
    /// digest is deeper and whose ring is longer than its own `(n, k)`,
    /// so the prefix slicing and ordinal translation are really
    /// exercised — agrees with the brute-force oracle, snapshot for
    /// snapshot, for every algorithm.
    #[test]
    fn grouped_query_matches_brute_force_oracle(
        scores in vec(0u8..=50, 40..140),
        m in 1usize..=5,
        s in 1usize..=7,
        k in 1usize..=6,
        extra in 0usize..=3,
        kind_idx in 0usize..5,
    ) {
        let n = s * m;
        let k = k.min(n);
        let data = stream(&scores);
        let kinds = all_kinds();
        let query = Query::window(n)
            .top(k)
            .slide(s)
            .algorithm(kinds[kind_idx]);
        // a deeper, wider sibling in the same geometry class: the
        // group's k_max and ring retention exceed `query`'s needs
        let deep = Query::window(s * (m + 1))
            .top((k + extra).min(s * (m + 1)))
            .slide(s)
            .algorithm(kinds[(kind_idx + 1) % 5]);

        let mut hub = Hub::new();
        hub.register_grouped(&deep).unwrap();
        let qid = hub.register_grouped(&query).unwrap();
        let mut got: Vec<Snapshot> = Vec::new();
        for chunk in data.chunks(11) {
            got.extend(
                hub.publish(chunk)
                    .into_iter()
                    .filter(|u| u.query == qid)
                    .map(|u| u.result.snapshot),
            );
        }
        let expected: Vec<Vec<Object>> = (1..=data.len() / s)
            .map(|j| oracle(&data[..j * s], n, k))
            .collect();
        prop_assert_eq!(&got, &expected, "grouped plane diverged from oracle");
        let stats = hub.stats();
        prop_assert_eq!(stats.grouped_queries, 2);
        prop_assert_eq!(stats.count_groups, 1, "same geometry class, one group");
        if !expected.is_empty() {
            prop_assert!(stats.count_group_hits > 0);
        }
    }

    /// The churn property: the same schedule — mid-stream unregister,
    /// and registrations at arbitrary stream offsets that found new
    /// geometry classes or join live ones on empty-slide boundaries —
    /// replayed on the isolated sequential hub, the grouped sequential
    /// hub, and the grouped sharded hub at 1/2/8 shards, must produce
    /// identical per-query event checksums.
    #[test]
    fn grouped_hubs_stay_byte_identical_with_mid_stream_churn(
        scores in vec(0u8..=50, 50..200),
        geoms in vec((1usize..=4, 1usize..=6, 0usize..2, 0usize..5), 3..8),
        s_base in 1usize..=6,
        cuts in vec(1usize..=23, 0..6),
        early_frac in 1usize..=100,
    ) {
        let data = stream(&scores);
        let kinds = all_kinds();
        // only two distinct slide lengths: late joiners that happen to
        // land on an empty-slide boundary join a live group, the rest
        // found classes at their own offsets
        let sds = [s_base, s_base * 2];
        let queries: Vec<Query> = geoms
            .iter()
            .map(|&(m, k, s_idx, kind_idx)| {
                let s = sds[s_idx];
                Query::window(s * m)
                    .top(k.min(s * m))
                    .slide(s)
                    .algorithm(kinds[kind_idx])
            })
            .collect();
        let schedule = Schedule {
            early: (early_frac * queries.len()).div_ceil(100).min(queries.len()),
            queries: &queries,
            data: &data,
            cuts: &cuts,
        };

        let (expected, iso_dropped, iso_stats) = schedule.run_hub(false, (true, true));
        prop_assert!(!expected.is_empty());
        prop_assert!(iso_stats.count_group_rebuilds > 0, "isolated slides count as rebuilds");
        let (grouped, grouped_dropped, grouped_stats) = schedule.run_hub(true, (true, true));
        prop_assert_eq!(grouped_dropped, iso_dropped);
        prop_assert_eq!(
            &grouped, &expected,
            "grouped sequential hub diverged from isolated (queries={}, early={})",
            queries.len(), schedule.early
        );
        prop_assert!(grouped_stats.count_group_hits > 0);
        prop_assert_eq!(grouped_stats.count_group_rebuilds, 0, "no isolated sessions here");
        for shards in [1usize, 2, 8] {
            let (got, par_dropped, par_stats) = schedule.run_sharded(shards, true);
            prop_assert_eq!(par_dropped, iso_dropped, "unregister targets diverged");
            prop_assert_eq!(
                &got, &expected,
                "grouped sharded hub diverged at {} shards (queries={}, early={})",
                shards, queries.len(), schedule.early
            );
            prop_assert_eq!(par_stats.count_group_hits, grouped_stats.count_group_hits,
                "sharding must not change how many slides the plane serves");
        }
    }

    /// The memoization property: result-class serving (the default), the
    /// pre-memoization per-member path (knob off), a mixed population
    /// (knob flipped mid-stream), the sharded hub with the knob off, and
    /// the async hub under seeded schedules all produce identical
    /// per-query event checksums to the isolated hub — which the oracle
    /// property above anchors to brute force. Geometries are drawn in
    /// duplicate so multi-member classes actually form.
    #[test]
    fn class_memoization_is_result_invisible(
        scores in vec(0u8..=50, 50..160),
        geoms in vec((1usize..=4, 1usize..=6, 0usize..5), 2..5),
        s_base in 1usize..=5,
        cuts in vec(1usize..=23, 0..6),
        early_frac in 1usize..=100,
        seed in 0u64..u64::MAX,
    ) {
        let data = stream(&scores);
        let kinds = all_kinds();
        let queries: Vec<Query> = geoms
            .iter()
            .flat_map(|&(m, k, kind_idx)| {
                let q = Query::window(s_base * m)
                    .top(k.min(s_base * m))
                    .slide(s_base)
                    .algorithm(kinds[kind_idx]);
                // a twin per geometry: every result class that survives
                // churn has at least two members to memoize across
                [q.clone(), q]
            })
            .collect();
        let schedule = Schedule {
            early: (early_frac * queries.len()).div_ceil(100).min(queries.len()),
            queries: &queries,
            data: &data,
            cuts: &cuts,
        };

        let (expected, iso_dropped, _) = schedule.run_hub(false, (true, true));
        prop_assert!(!expected.is_empty());
        let (memo, memo_dropped, memo_stats) = schedule.run_hub(true, (true, true));
        prop_assert_eq!(memo_dropped, iso_dropped);
        prop_assert_eq!(&memo, &expected, "classed hub diverged from isolated");
        prop_assert!(
            memo_stats.class_hits > 0,
            "duplicated geometries must form multi-member classes"
        );

        let (off, off_dropped, off_stats) = schedule.run_hub(true, (false, false));
        prop_assert_eq!(off_dropped, iso_dropped);
        prop_assert_eq!(&off, &expected, "knob-off hub diverged from isolated");
        // knob off founds uniform solo classes — per-member serving, so
        // nothing is ever served off another member's computation
        prop_assert_eq!(off_stats.class_hits, 0);

        let (mixed, mixed_dropped, _) = schedule.run_hub(true, (false, true));
        prop_assert_eq!(mixed_dropped, iso_dropped);
        prop_assert_eq!(&mixed, &expected, "mixed classed/unclassed hub diverged");

        let (sharded_off, so_dropped, _) = schedule.run_sharded(2, false);
        prop_assert_eq!(so_dropped, iso_dropped);
        prop_assert_eq!(&sharded_off, &expected, "knob-off sharded hub diverged");

        for (shards, workers) in [(1usize, 1usize), (2, 2), (8, 3)] {
            let (got, async_dropped, async_stats) = schedule.run_async(shards, workers, seed);
            prop_assert_eq!(async_dropped, iso_dropped);
            prop_assert_eq!(
                &got, &expected,
                "async hub diverged (seed={:#018x}, shards={}, workers={})",
                seed, shards, workers
            );
            prop_assert!(async_stats.result_classes > 0, "classes survive the reactor");
        }
    }
}

/// Pins the tentpole's sharing mechanism, not just its results: on a
/// slide close, every member of a result class receives a clone of the
/// **same** `Snapshot` allocation (`Arc::ptr_eq`), while with the knob
/// off each member materializes its own. Results are checksum-identical
/// either way.
#[test]
fn class_members_share_one_snapshot_allocation() {
    let data = stream(&(0..96).map(|i| (i * 5 % 23) as u8).collect::<Vec<_>>());
    let mut classed = Hub::new();
    let mut off = Hub::new();
    off.set_result_class_sharing(false);
    let members = 4usize;
    for hub in [&mut classed, &mut off] {
        for _ in 0..members {
            hub.register_grouped(&Query::window(8).top(3).slide(4))
                .unwrap();
        }
    }
    let mut classed_sums = BTreeMap::new();
    let mut off_sums = BTreeMap::new();
    for chunk in data.chunks(4) {
        let updates = classed.publish(chunk);
        let mut by_slide: BTreeMap<u64, Vec<Snapshot>> = BTreeMap::new();
        for u in &updates {
            by_slide
                .entry(u.result.slide)
                .or_default()
                .push(u.result.snapshot.clone());
        }
        for (slide, snaps) in &by_slide {
            assert_eq!(snaps.len(), members, "slide {slide}: every member emits");
            for snap in &snaps[1..] {
                assert!(
                    snaps[0].ptr_eq(snap),
                    "slide {slide}: class members must share one snapshot Arc"
                );
            }
        }
        fold_all(&mut classed_sums, updates);

        let updates = off.publish(chunk);
        let mut by_slide: BTreeMap<u64, Vec<Snapshot>> = BTreeMap::new();
        for u in &updates {
            by_slide
                .entry(u.result.slide)
                .or_default()
                .push(u.result.snapshot.clone());
        }
        for (slide, snaps) in &by_slide {
            for snap in &snaps[1..] {
                assert!(
                    snaps[0].is_empty() || !snaps[0].ptr_eq(snap),
                    "slide {slide}: unclassed members each own their snapshot"
                );
            }
        }
        fold_all(&mut off_sums, updates);
    }
    assert_eq!(classed_sums, off_sums, "sharing must be result-invisible");
    let stats = classed.stats();
    assert_eq!(stats.result_classes, 1, "one geometry, one class");
    assert!(
        stats.class_hits > 0,
        "every close serves 3 members for free"
    );
    // knob off: one solo class per member, nobody rides a shared close
    assert_eq!(off.stats().result_classes, members as u64);
    assert_eq!(off.stats().class_hits, 0);
}

/// A checkpoint cut through a **warm** count group — the open slide
/// partially filled, the ring mid-stream — must restore into both hub
/// flavors and continue byte-identically with the uninterrupted run,
/// with the sharing counters carried over.
#[test]
fn checkpoint_cuts_through_a_warm_count_group() {
    let kinds = all_kinds();
    let data = stream(&(0..400).map(|i| (i * 7 % 51) as u8).collect::<Vec<_>>());
    let mut hub = Hub::new();
    for (i, kind) in kinds.iter().enumerate() {
        // two geometry classes (s = 10 registered up front, s = 6 via the
        // second query each), k varies so k_max grows on join
        hub.register_grouped(&Query::window(30).top(1 + i).slide(10).algorithm(*kind))
            .unwrap();
        hub.register_grouped(&Query::window(12).top(1 + i % 3).slide(6).algorithm(*kind))
            .unwrap();
    }
    // 157 = 15 full s=10 slides + 7 pending, 26 full s=6 slides + 1
    // pending: both groups are warm at the cut
    let mut sums = BTreeMap::new();
    fold_all(&mut sums, hub.publish(&data[..157]));
    let cp = hub.checkpoint();
    let stats_at_cut = hub.stats();
    assert_eq!(stats_at_cut.count_groups, 2);
    assert!(stats_at_cut.count_group_hits > 0);

    // the uninterrupted run is the reference
    let mut expected_tail = BTreeMap::new();
    fold_all(&mut expected_tail, hub.publish(&data[157..]));
    assert!(!expected_tail.is_empty());

    // sequential restore — class_hits is serving locality, not state:
    // a restore rebuilds the result classes and counts fresh
    let mut expected_stats = stats_at_cut;
    expected_stats.class_hits = 0;
    let mut seq = Hub::restore(&cp, &DefaultEngineFactory).unwrap();
    assert_eq!(
        seq.stats(),
        expected_stats,
        "counters travel with the checkpoint"
    );
    let mut seq_tail = BTreeMap::new();
    fold_all(&mut seq_tail, seq.publish(&data[157..]));
    assert_eq!(seq_tail, expected_tail, "sequential restore diverged");

    // sharded restore, groups placed wholesale on their members' shards
    for shards in [1usize, 3] {
        let mut par = ShardedHub::restore(&cp, &DefaultEngineFactory, shards).unwrap();
        let restored = par.stats().unwrap();
        assert_eq!(restored, expected_stats, "shards={shards}");
        let mut par_tail = BTreeMap::new();
        for chunk in data[157..].chunks(31) {
            par.publish(chunk).unwrap();
            fold_all(&mut par_tail, par.drain().unwrap());
        }
        assert_eq!(
            par_tail, expected_tail,
            "sharded restore diverged at {shards} shards"
        );
        // the restored plane keeps serving registrations: a new query at
        // the restored offset still lands in a (possibly fresh) group
        par.register_grouped(&Query::window(20).top(2).slide(10))
            .unwrap();
        par.publish(&data[..20]).unwrap();
        par.drain().unwrap();
    }
}

/// Whole-group migration: moving one grouped member relocates its entire
/// count group, and results are unchanged across the move.
#[test]
fn move_query_relocates_the_whole_count_group() {
    let data = stream(&(0..240).map(|i| (i * 11 % 37) as u8).collect::<Vec<_>>());
    let mut reference = Hub::new();
    let mut hub = ShardedHub::new(4);
    let mut ids = Vec::new();
    for k in 1..=4usize {
        reference
            .register_grouped(&Query::window(16).top(k).slide(8))
            .unwrap();
        ids.push(
            hub.register_grouped(&Query::window(16).top(k).slide(8))
                .unwrap(),
        );
    }
    let mut expected = BTreeMap::new();
    let mut got = BTreeMap::new();
    fold_all(&mut expected, reference.publish(&data[..100]));
    hub.publish(&data[..100]).unwrap();
    fold_all(&mut got, hub.drain().unwrap());
    // bounce the group around between publishes, mid-slide (100 % 8 ≠ 0)
    for target in [2usize, 0, 3] {
        hub.move_query(ids[1], target).unwrap();
    }
    fold_all(&mut expected, reference.publish(&data[100..]));
    hub.publish(&data[100..]).unwrap();
    fold_all(&mut got, hub.drain().unwrap());
    assert_eq!(got, expected, "results must be placement-blind");
    let stats = hub.stats().unwrap();
    assert_eq!(stats.count_groups, 1, "one geometry class, moved wholesale");
    assert_eq!(stats.grouped_queries, 4);
}

/// Resize re-scatters count groups wholesale and preserves results.
#[test]
fn resize_preserves_the_count_plane() {
    let data = stream(&(0..300).map(|i| (i * 13 % 41) as u8).collect::<Vec<_>>());
    let mut reference = Hub::new();
    let mut hub = ShardedHub::new(2);
    for i in 0..6usize {
        let q = Query::window(12 * (1 + i % 2)).top(1 + i % 4).slide(12);
        reference.register_grouped(&q).unwrap();
        hub.register_grouped(&q).unwrap();
    }
    let mut expected = BTreeMap::new();
    let mut got = BTreeMap::new();
    // 130 % 12 ≠ 0: the group is warm when the resize cuts through
    fold_all(&mut expected, reference.publish(&data[..130]));
    hub.publish(&data[..130]).unwrap();
    fold_all(&mut got, hub.drain().unwrap());
    hub.resize(5).unwrap();
    fold_all(&mut expected, reference.publish(&data[130..]));
    hub.publish(&data[130..]).unwrap();
    fold_all(&mut got, hub.drain().unwrap());
    assert_eq!(got, expected, "resize must not perturb the count plane");
    assert_eq!(hub.stats().unwrap().count_groups, 1);
}
