//! Behavioral assertions from the paper's analysis sections: candidate
//! bounds, the delay-policy benefit, WRT-driven partition adaptation,
//! TBUI/UBSA scan savings, and relative algorithm sensitivities.

use sap::baselines::{KSkyband, MinTopK, Sma};
use sap::core::{Sap, SapConfig};
use sap::stream::generators::{Dataset, Workload};
use sap::stream::{run, WindowSpec};

#[test]
fn sap_keeps_fewest_candidates_on_paper_suite() {
    // Appendix E: SAP < MinTopK < k-skyband in average candidate count.
    let len = 60_000;
    let spec = WindowSpec::new(3_000, 50, 30).unwrap();
    for ds in Dataset::paper_suite(len) {
        let data = ds.generate(len, 5);
        let sap = run(&mut Sap::new(SapConfig::new(spec)), &data);
        let mtk = run(&mut MinTopK::new(spec), &data);
        let ksb = run(&mut KSkyband::new(spec), &data);
        assert!(
            sap.avg_candidates <= mtk.avg_candidates * 1.05,
            "{}: SAP {} vs MinTopK {}",
            ds.name(),
            sap.avg_candidates,
            mtk.avg_candidates
        );
        assert!(
            mtk.avg_candidates <= ksb.avg_candidates * 1.05,
            "{}: MinTopK {} vs k-skyband {}",
            ds.name(),
            mtk.avg_candidates,
            ksb.avg_candidates
        );
    }
}

#[test]
fn sap_uses_least_memory_among_one_pass_algorithms() {
    // Appendix F: SAP < MinTopK < k-skyband in candidate memory.
    let len = 40_000;
    let spec = WindowSpec::new(2_000, 100, 20).unwrap();
    let data = Dataset::Stock.generate(len, 6);
    let sap = run(&mut Sap::new(SapConfig::new(spec)), &data);
    let mtk = run(&mut MinTopK::new(spec), &data);
    let ksb = run(&mut KSkyband::new(spec), &data);
    assert!(sap.avg_memory_bytes < mtk.avg_memory_bytes);
    assert!(sap.avg_memory_bytes < ksb.avg_memory_bytes * 2.0);
}

#[test]
fn delay_policy_cuts_formations_and_time() {
    // Table 2's core claim: delaying M_i formation skips most of them.
    let len = 60_000;
    let spec = WindowSpec::new(2_000, 20, 20).unwrap();
    let data = Dataset::Trip.generate(len, 7);
    let delayed = run(&mut Sap::new(SapConfig::equal(spec, None)), &data);
    let eager = run(
        &mut Sap::new(SapConfig::equal(spec, None).without_delay()),
        &data,
    );
    assert!(
        delayed.stats.meaningful_sets_formed * 2 < eager.stats.meaningful_sets_formed,
        "delayed {} vs eager {}",
        delayed.stats.meaningful_sets_formed,
        eager.stats.meaningful_sets_formed
    );
    assert!(delayed.stats.meaningful_sets_skipped > 0);
}

#[test]
fn mintopk_candidates_grow_as_s_shrinks() {
    // §2.1 / Fig 9(g-i): MinTopK must maintain more candidates when the
    // slide is small relative to k.
    let len = 40_000;
    let data = Dataset::TimeU.generate(len, 8);
    let small_s = run(
        &mut MinTopK::new(WindowSpec::new(2_000, 40, 10).unwrap()),
        &data,
    );
    let large_s = run(
        &mut MinTopK::new(WindowSpec::new(2_000, 40, 200).unwrap()),
        &data,
    );
    assert!(
        small_s.avg_candidates > 1.5 * large_s.avg_candidates,
        "{} vs {}",
        small_s.avg_candidates,
        large_s.avg_candidates
    );
}

#[test]
fn sap_candidates_stay_flat_as_s_shrinks() {
    // SAP's partition bound depends on max(s, k): shrinking s below k
    // must NOT inflate its candidate set the way it inflates MinTopK's.
    let len = 40_000;
    let data = Dataset::TimeU.generate(len, 9);
    let small_s = run(
        &mut Sap::new(SapConfig::new(WindowSpec::new(2_000, 40, 10).unwrap())),
        &data,
    );
    let large_s = run(
        &mut Sap::new(SapConfig::new(WindowSpec::new(2_000, 40, 200).unwrap())),
        &data,
    );
    assert!(
        small_s.avg_candidates < 1.6 * large_s.avg_candidates.max(1.0),
        "{} vs {}",
        small_s.avg_candidates,
        large_s.avg_candidates
    );
}

#[test]
fn kskyband_explodes_on_anticorrelated_streams() {
    // Figure 1(a): on decreasing scores the k-skyband is the whole window.
    let len = 20_000;
    let spec = WindowSpec::new(1_000, 10, 10).unwrap();
    let down = run(
        &mut KSkyband::new(spec),
        &Dataset::Decreasing.generate(len, 10),
    );
    let rand = run(&mut KSkyband::new(spec), &Dataset::TimeU.generate(len, 10));
    assert!(down.avg_candidates > 990.0, "got {}", down.avg_candidates);
    assert!(rand.avg_candidates < 200.0, "got {}", rand.avg_candidates);
    // SAP on the same adversarial stream keeps far fewer candidates
    let sap_down = run(
        &mut Sap::new(SapConfig::new(spec)),
        &Dataset::Decreasing.generate(len, 10),
    );
    assert!(
        sap_down.avg_candidates < down.avg_candidates / 2.0,
        "SAP {} vs k-skyband {}",
        sap_down.avg_candidates,
        down.avg_candidates
    );
}

#[test]
fn sma_rescans_cluster_on_downtrends() {
    // §6.3: SMA's re-scans concentrate where scores keep decreasing.
    let len = 20_000;
    let spec = WindowSpec::new(1_000, 10, 20).unwrap();
    let mut down = Sma::new(spec);
    run(&mut down, &Dataset::Decreasing.generate(len, 11));
    let mut up = Sma::new(spec);
    run(&mut up, &Dataset::Increasing.generate(len, 11));
    assert!(
        down.rescan_count() > 10 * (up.rescan_count() + 1),
        "down {} vs up {}",
        down.rescan_count(),
        up.rescan_count()
    );
}

#[test]
fn wrt_merges_partitions_under_stationary_scores() {
    // §4.2: stationary distribution → WRT accepts merges → fewer, larger
    // partitions than the equal policy's m*.
    let len = 60_000;
    let spec = WindowSpec::new(4_000, 20, 20).unwrap();
    let data = Dataset::TimeU.generate(len, 12);
    let dynamic = run(&mut Sap::new(SapConfig::dynamic(spec)), &data);
    let equal = run(&mut Sap::new(SapConfig::equal(spec, None)), &data);
    assert!(
        dynamic.stats.partitions_sealed < equal.stats.partitions_sealed,
        "dynamic {} vs equal {} seals",
        dynamic.stats.partitions_sealed,
        equal.stats.partitions_sealed
    );
}

#[test]
fn wrt_splits_partitions_on_uptrends() {
    // Rising scores: the candidate partition's top-k tends to beat the
    // window history, so the WRT seals early — more partitions per object
    // than on a stationary stream.
    let len = 60_000;
    let spec = WindowSpec::new(4_000, 20, 20).unwrap();
    let rising = run(
        &mut Sap::new(SapConfig::dynamic(spec)),
        &Dataset::Increasing.generate(len, 13),
    );
    let flat = run(
        &mut Sap::new(SapConfig::dynamic(spec)),
        &Dataset::TimeU.generate(len, 13),
    );
    assert!(
        rising.stats.partitions_sealed > flat.stats.partitions_sealed,
        "rising {} vs flat {}",
        rising.stats.partitions_sealed,
        flat.stats.partitions_sealed
    );
}

#[test]
fn ubsa_skips_unit_scans() {
    // §5.2: the enhanced policy's F_θ tests skip the scanning of units
    // that provably hold no k-skyband objects.
    let len = 80_000;
    let spec = WindowSpec::new(4_000, 10, 10).unwrap();
    let data = Dataset::Stock.generate(len, 14);
    let enhanced = run(&mut Sap::new(SapConfig::enhanced(spec)), &data);
    assert!(
        enhanced.stats.unit_scans_skipped > 0,
        "UBSA never skipped a unit scan"
    );
    assert!(enhanced.stats.k_units > 0, "TBUI labelled no units");
}

#[test]
fn equal_partition_candidate_counts_track_eq1_across_m() {
    // Eq. (1): the bound is minimized near m*; candidate counts under
    // other m values must still respect their own bounds.
    let len = 30_000;
    let data = Dataset::TimeU.generate(len, 15);
    let spec = WindowSpec::new(1_500, 15, 15).unwrap();
    for m in [2usize, 5, 10, 25] {
        let mut alg = Sap::new(SapConfig::equal(spec, Some(m)));
        let p = alg.unit_target();
        let parts = spec.n.div_ceil(p);
        let summary = run(&mut alg, &data);
        let bound = (parts * spec.k + p * spec.k / spec.s.max(spec.k) + 2 * spec.k) as f64;
        assert!(
            summary.peak_candidates as f64 <= bound,
            "m={m}: peak {} > bound {bound}",
            summary.peak_candidates
        );
    }
}

#[test]
fn operation_counters_are_plausible() {
    let len = 20_000;
    let spec = WindowSpec::new(1_000, 10, 10).unwrap();
    let data = Dataset::TimeU.generate(len, 16);
    let summary = run(&mut Sap::new(SapConfig::new(spec)), &data);
    let st = summary.stats;
    // every sealed partition contributes ≤ k inserts at merge time
    assert!(st.partitions_sealed > 0);
    assert!(st.insertions > 0);
    // deletions never exceed insertions (nothing deleted twice)
    assert!(st.deletions <= st.insertions);
    // formations + skips = number of front promotions with a pivot
    assert!(st.meaningful_sets_formed + st.meaningful_sets_skipped > 0);
}
