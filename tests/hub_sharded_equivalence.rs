//! Sharded-hub equivalence: a `ShardedHub` with 1, 2, and 8 shards must
//! produce **checksum-identical `TopKEvent` streams** to the sequential
//! `Hub` for SAP and all four baselines — with queries registering and
//! unregistering mid-stream, ragged publish chunking, and drains
//! interleaved at arbitrary points. Parallel fan-out is an optimization,
//! never a semantic: every query's slides, snapshots, and deltas are
//! byte-identical to the single-threaded reference.

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;

use sap::prelude::*;

mod common;
use common::fold_all;

/// Tie-heavy stream from a small score alphabet.
fn stream(scores: &[u8]) -> Vec<Object> {
    scores
        .iter()
        .enumerate()
        .map(|(i, s)| Object::try_new(i as u64, *s as f64).expect("finite"))
        .collect()
}

/// Window geometry: s divides n, 1 ≤ k ≤ n.
fn geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=10, 1usize..=8).prop_flat_map(|(m, s)| {
        let n = m * s;
        (Just(n), 1..=n, Just(s))
    })
}

fn all_kinds() -> [AlgorithmKind; 5] {
    [
        AlgorithmKind::sap(),
        AlgorithmKind::Naive,
        AlgorithmKind::KSkyband,
        AlgorithmKind::MinTopK,
        AlgorithmKind::sma(),
    ]
}

/// The scripted schedule both hubs replay: register `early` queries,
/// publish the first half in ragged chunks, register `late` queries and
/// unregister one early query, publish the rest. Returns per-query event
/// checksums keyed by `QueryId` (identical registration order ⇒
/// identical ids across hubs) plus the dropped query's id.
struct Schedule<'a> {
    queries: &'a [Query],
    early: usize,
    data: &'a [Object],
    cuts: &'a [usize],
}

impl Schedule<'_> {
    fn chunks(&self, lo: usize, hi: usize) -> Vec<&[Object]> {
        let mut out = Vec::new();
        let mut offset = lo;
        let mut turn = 0usize;
        while offset < hi {
            let take = if self.cuts.is_empty() {
                1
            } else {
                self.cuts[turn % self.cuts.len()]
            }
            .min(hi - offset);
            turn += 1;
            out.push(&self.data[offset..offset + take]);
            offset += take;
        }
        out
    }

    /// Replays the schedule on the sequential hub.
    fn run_sequential(&self) -> (BTreeMap<QueryId, u64>, Option<QueryId>) {
        let mut hub = Hub::new();
        let mut sums = BTreeMap::new();
        for q in &self.queries[..self.early] {
            hub.register(q).unwrap();
        }
        let mid = self.data.len() / 2;
        for chunk in self.chunks(0, mid) {
            let updates = hub.publish(chunk);
            fold_all(&mut sums, updates);
        }
        let ids: Vec<QueryId> = hub.query_ids().collect();
        let dropped = (ids.len() > 1).then(|| ids[0]);
        if let Some(id) = dropped {
            hub.unregister(id).expect("registered in phase one");
        }
        for q in &self.queries[self.early..] {
            hub.register(q).unwrap();
        }
        for chunk in self.chunks(mid, self.data.len()) {
            let updates = hub.publish(chunk);
            fold_all(&mut sums, updates);
        }
        (sums, dropped)
    }

    /// Replays the schedule on a sharded hub, draining every chunk so
    /// barrier crossings interleave with publishes.
    fn run_sharded(&self, shards: usize) -> (BTreeMap<QueryId, u64>, Option<QueryId>) {
        let mut hub = ShardedHub::new(shards);
        let mut sums = BTreeMap::new();
        for q in &self.queries[..self.early] {
            hub.register(q).unwrap();
        }
        let mid = self.data.len() / 2;
        for chunk in self.chunks(0, mid) {
            hub.publish(chunk).expect("shards alive");
            let updates = hub.drain().expect("shards alive");
            fold_all(&mut sums, updates);
        }
        let ids: Vec<QueryId> = hub.query_ids().collect();
        let dropped = (ids.len() > 1).then(|| ids[0]);
        if let Some(id) = dropped {
            hub.unregister(id).expect("registered in phase one");
        }
        for q in &self.queries[self.early..] {
            hub.register(q).unwrap();
        }
        for chunk in self.chunks(mid, self.data.len()) {
            hub.publish(chunk).expect("shards alive");
            let updates = hub.drain().expect("shards alive");
            fold_all(&mut sums, updates);
        }
        hub.flush().expect("shards alive");
        let updates = hub.drain().expect("shards alive");
        fold_all(&mut sums, updates);
        (sums, dropped)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance property: 1, 2, and 8 shards each reproduce the
    /// sequential hub's per-query event streams exactly — SAP and all
    /// four baselines, mid-stream register and unregister included.
    #[test]
    fn sharded_hub_matches_sequential_event_streams(
        scores in vec(0u8..24, 40..220),
        geoms in vec(geometry(), 2..7),
        cuts in vec(1usize..=29, 0..8),
        early_frac in 1usize..=100,
    ) {
        let data = stream(&scores);
        let kinds = all_kinds();
        let queries: Vec<Query> = geoms
            .iter()
            .enumerate()
            .map(|(i, &(n, k, s))| {
                Query::window(n).top(k).slide(s).algorithm(kinds[i % kinds.len()])
            })
            .collect();
        let schedule = Schedule {
            early: (early_frac * queries.len()).div_ceil(100).min(queries.len()),
            queries: &queries,
            data: &data,
            cuts: &cuts,
        };

        let (expected, seq_dropped) = schedule.run_sequential();
        for shards in [1usize, 2, 8] {
            let (got, par_dropped) = schedule.run_sharded(shards);
            prop_assert_eq!(par_dropped, seq_dropped, "unregister targets diverged");
            prop_assert_eq!(
                &got, &expected,
                "event streams diverged at {} shards (queries={}, early={})",
                shards, queries.len(), schedule.early
            );
        }
    }
}

/// Pinned non-property case: a mixed register/unregister schedule over a
/// real generated stream, large enough that every algorithm leaves
/// warm-up and expires objects. Catches regressions even if the property
/// generator drifts toward tiny cases.
#[test]
fn sharded_hub_matches_sequential_on_stock_stream() {
    let data = Dataset::Stock.generate(4_000, 42);
    let kinds = all_kinds();
    let queries: Vec<Query> = (0..12)
        .map(|i| {
            let s = [10usize, 20, 50][i % 3];
            let n = s * [4usize, 8, 10][i % 3];
            Query::window(n)
                .top(1 + 3 * (i % 4))
                .slide(s)
                .algorithm(kinds[i % kinds.len()])
        })
        .collect();
    let cuts = [317usize, 89, 411];
    let schedule = Schedule {
        early: 7,
        queries: &queries,
        data: &data,
        cuts: &cuts,
    };
    let (expected, _) = schedule.run_sequential();
    assert!(!expected.is_empty());
    for shards in [1usize, 2, 8] {
        let (got, _) = schedule.run_sharded(shards);
        assert_eq!(got, expected, "diverged at {shards} shards");
    }
}
