//! Time-based query equivalence: a query built with
//! `Query::window_duration(..)` must produce the **same snapshots** on
//! every surface — the raw `TimeBased` adapter, a `TimedSession`, the
//! sequential `Hub`, and the `ShardedHub` at 1/2/8 shards — and those
//! snapshots must match a brute-force time-window oracle, on
//! variable-rate streams whose slides range from packed to empty.
//! A second property mixes count- and time-based queries with mid-stream
//! register/unregister and checks the two hubs stay byte-identical
//! event-stream-for-event-stream (the PR's acceptance criterion).

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;

use sap::prelude::*;

mod common;
use common::fold_all;

/// Builds a timed stream from (gap, score) pairs: timestamps accumulate
/// the gaps (gap 0 = same-instant burst; large gaps = empty slides).
fn timed_stream(raw: &[(u8, u8)]) -> Vec<TimedObject> {
    let mut ts = 0u64;
    raw.iter()
        .enumerate()
        .map(|(i, &(gap, score))| {
            ts += gap as u64;
            TimedObject::try_new(i as u64, ts, score as f64).expect("finite")
        })
        .collect()
}

/// Brute-force time-window oracle: top-k of the objects with
/// `timestamp ∈ [window_end − duration, window_end)`, ties to the higher
/// id, as untimed result objects.
fn oracle(all: &[TimedObject], window_end: u64, duration: u64, k: usize) -> Vec<Object> {
    let lo = window_end.saturating_sub(duration);
    let mut alive: Vec<TimedObject> = all
        .iter()
        .filter(|o| o.timestamp >= lo && o.timestamp < window_end)
        .copied()
        .collect();
    alive.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(b.id.cmp(&a.id)));
    alive.truncate(k);
    alive.iter().map(TimedObject::untimed).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every surface agrees with the oracle: direct adapter, session,
    /// sequential hub, sharded hub — same stream, same snapshots.
    #[test]
    fn timed_query_matches_oracle_on_every_surface(
        raw in vec((0u8..=12, 0u8..24), 40..160),
        m in 1u64..=6,
        sd in 1u64..=25,
        k in 1usize..=5,
        algo_idx in 0usize..3,
    ) {
        let wd = sd * m;
        let data = timed_stream(&raw);
        // past this watermark every object has expired, so the final
        // slides prove draining down to empty results
        let horizon = data.last().unwrap().timestamp + wd + sd;
        let kinds = [
            AlgorithmKind::sap(),
            AlgorithmKind::MinTopK,
            AlgorithmKind::KSkyband,
        ];
        let query = Query::window_duration(wd)
            .top(k)
            .slide_duration(sd)
            .algorithm(kinds[algo_idx]);

        // 1. the raw adapter, checked against the brute-force oracle
        let mut direct = query.build_timed().unwrap();
        let mut expected: Vec<Vec<Object>> = Vec::new();
        for &o in &data {
            for snap in direct.ingest(o) {
                expected.push(snap.iter().map(TimedObject::untimed).collect());
            }
        }
        for snap in direct.advance_to(horizon) {
            expected.push(snap.iter().map(TimedObject::untimed).collect());
        }
        prop_assert!(!expected.is_empty());
        for (i, snap) in expected.iter().enumerate() {
            let window_end = sd * (i as u64 + 1);
            prop_assert_eq!(
                snap,
                &oracle(&data, window_end, wd, k),
                "window ending {} (wd={}, sd={}, k={}, algo={})",
                window_end, wd, sd, k, query.kind().label()
            );
        }
        prop_assert!(
            expected.last().unwrap().is_empty(),
            "everything expired past the horizon"
        );

        // 2. a TimedSession fed in ragged chunks
        let mut session = query.timed_session().unwrap();
        let mut got: Vec<Snapshot> = Vec::new();
        for chunk in data.chunks(7) {
            got.extend(session.push_timed(chunk).into_iter().map(|r| r.snapshot));
        }
        got.extend(session.advance_watermark(horizon).into_iter().map(|r| r.snapshot));
        prop_assert_eq!(&got, &expected, "TimedSession diverged");
        prop_assert_eq!(session.slides(), expected.len() as u64);

        // 3. the sequential hub
        let mut hub = Hub::new();
        let qid = hub.register(&query).unwrap();
        let mut got: Vec<Snapshot> = Vec::new();
        for chunk in data.chunks(11) {
            got.extend(hub.publish_timed(chunk).into_iter().map(|u| u.result.snapshot));
        }
        got.extend(hub.advance_time(horizon).into_iter().map(|u| u.result.snapshot));
        prop_assert_eq!(&got, &expected, "Hub diverged");
        prop_assert_eq!(hub.timed_session(qid).unwrap().slides(), expected.len() as u64);

        // 4. the sharded hub, with drains interleaved per chunk
        for shards in [1usize, 2, 8] {
            let mut par = ShardedHub::new(shards);
            par.register(&query).unwrap();
            let mut got: Vec<Snapshot> = Vec::new();
            for chunk in data.chunks(11) {
                par.publish_timed(chunk).unwrap();
                got.extend(par.drain().unwrap().into_iter().map(|u| u.result.snapshot));
            }
            par.advance_time(horizon).unwrap();
            got.extend(par.drain().unwrap().into_iter().map(|u| u.result.snapshot));
            prop_assert_eq!(&got, &expected, "ShardedHub({}) diverged", shards);
        }
    }
}

/// The scripted mixed-model schedule both hubs replay: register `early`
/// queries, publish half the timed stream in ragged chunks, unregister
/// one query and register the rest, publish the remainder, then raise a
/// final watermark. Returns per-query event checksums.
struct Schedule<'a> {
    queries: &'a [Query],
    early: usize,
    data: &'a [TimedObject],
    cuts: &'a [usize],
}

impl Schedule<'_> {
    fn chunks(&self, lo: usize, hi: usize) -> Vec<&[TimedObject]> {
        let mut out = Vec::new();
        let mut offset = lo;
        let mut turn = 0usize;
        while offset < hi {
            let take = if self.cuts.is_empty() {
                1
            } else {
                self.cuts[turn % self.cuts.len()]
            }
            .min(hi - offset);
            turn += 1;
            out.push(&self.data[offset..offset + take]);
            offset += take;
        }
        out
    }

    fn horizon(&self) -> u64 {
        self.data.last().map_or(0, |o| o.timestamp) + 500
    }

    fn run_sequential(&self) -> (BTreeMap<QueryId, u64>, Option<QueryId>) {
        let mut hub = Hub::new();
        let mut sums = BTreeMap::new();
        for q in &self.queries[..self.early] {
            hub.register(q).unwrap();
        }
        let mid = self.data.len() / 2;
        for chunk in self.chunks(0, mid) {
            let updates = hub.publish_timed(chunk);
            fold_all(&mut sums, updates);
        }
        let ids: Vec<QueryId> = hub.query_ids().collect();
        let dropped = (ids.len() > 1).then(|| ids[0]);
        if let Some(id) = dropped {
            hub.unregister(id).expect("registered in phase one");
        }
        for q in &self.queries[self.early..] {
            hub.register(q).unwrap();
        }
        for chunk in self.chunks(mid, self.data.len()) {
            let updates = hub.publish_timed(chunk);
            fold_all(&mut sums, updates);
        }
        let updates = hub.advance_time(self.horizon());
        fold_all(&mut sums, updates);
        (sums, dropped)
    }

    fn run_sharded(&self, shards: usize) -> (BTreeMap<QueryId, u64>, Option<QueryId>) {
        let mut hub = ShardedHub::new(shards);
        let mut sums = BTreeMap::new();
        for q in &self.queries[..self.early] {
            hub.register(q).unwrap();
        }
        let mid = self.data.len() / 2;
        for chunk in self.chunks(0, mid) {
            hub.publish_timed(chunk).unwrap();
            fold_all(&mut sums, hub.drain().unwrap());
        }
        let ids: Vec<QueryId> = hub.query_ids().collect();
        let dropped = (ids.len() > 1).then(|| ids[0]);
        if let Some(id) = dropped {
            hub.unregister(id).expect("registered in phase one");
        }
        for q in &self.queries[self.early..] {
            hub.register(q).unwrap();
        }
        for chunk in self.chunks(mid, self.data.len()) {
            hub.publish_timed(chunk).unwrap();
            fold_all(&mut sums, hub.drain().unwrap());
        }
        hub.advance_time(self.horizon()).unwrap();
        fold_all(&mut sums, hub.drain().unwrap());
        (sums, dropped)
    }
}

/// Mixed count/timed geometry: s divides n in both models.
fn geometry() -> impl Strategy<Value = (bool, usize, usize, usize)> {
    (0usize..2, 1usize..=6, 1usize..=12, 1usize..=5)
        .prop_map(|(timed, m, s, k)| (timed == 1, m * s, s, k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance property: heterogeneous count- and time-based
    /// queries on one published timed stream, with mid-stream register
    /// and unregister — 1, 2, and 8 shards each reproduce the sequential
    /// hub's per-query event streams exactly.
    #[test]
    fn mixed_hubs_stay_byte_identical_with_mid_stream_churn(
        raw in vec((0u8..=9, 0u8..24), 40..180),
        geoms in vec(geometry(), 2..7),
        cuts in vec(1usize..=29, 0..8),
        early_frac in 1usize..=100,
    ) {
        let data = timed_stream(&raw);
        let kinds = [
            AlgorithmKind::sap(),
            AlgorithmKind::Naive,
            AlgorithmKind::KSkyband,
            AlgorithmKind::MinTopK,
            AlgorithmKind::sma(),
        ];
        let queries: Vec<Query> = geoms
            .iter()
            .enumerate()
            .map(|(i, &(timed, n, s, k))| {
                let kind = kinds[i % kinds.len()];
                if timed {
                    Query::window_duration(n as u64)
                        .top(k)
                        .slide_duration(s as u64)
                        .algorithm(kind)
                } else {
                    Query::window(n).top(k.min(n)).slide(s).algorithm(kind)
                }
            })
            .collect();
        let schedule = Schedule {
            early: (early_frac * queries.len()).div_ceil(100).min(queries.len()),
            queries: &queries,
            data: &data,
            cuts: &cuts,
        };

        let (expected, seq_dropped) = schedule.run_sequential();
        prop_assert!(!expected.is_empty());
        for shards in [1usize, 2, 8] {
            let (got, par_dropped) = schedule.run_sharded(shards);
            prop_assert_eq!(par_dropped, seq_dropped, "unregister targets diverged");
            prop_assert_eq!(
                &got, &expected,
                "event streams diverged at {} shards (queries={}, early={})",
                shards, queries.len(), schedule.early
            );
        }
    }
}

/// Pinned non-property case on a generated Poisson stream, large enough
/// that timed windows expire, empty slides occur, and every algorithm
/// leaves warm-up — catches regressions even if the property generator
/// drifts toward tiny cases.
#[test]
fn mixed_hubs_agree_on_poisson_stock_stream() {
    let data = Dataset::Stock.generate_timed(4_000, 42, ArrivalProcess::poisson(4.0));
    let queries: Vec<Query> = (0..12)
        .map(|i| {
            let kind = [
                AlgorithmKind::sap(),
                AlgorithmKind::MinTopK,
                AlgorithmKind::KSkyband,
            ][i % 3];
            if i % 2 == 0 {
                let s = [10usize, 20, 50][i % 3];
                Query::window(s * 4)
                    .top(1 + 3 * (i % 4))
                    .slide(s)
                    .algorithm(kind)
            } else {
                // slide durations straddle the 4-unit mean gap: some
                // slides hold dozens of objects, others none
                let sd = [2u64, 25, 120][i % 3];
                Query::window_duration(sd * 4)
                    .top(1 + 3 * (i % 4))
                    .slide_duration(sd)
                    .algorithm(kind)
            }
        })
        .collect();
    let cuts = [317usize, 89, 411];
    let schedule = Schedule {
        early: 7,
        queries: &queries,
        data: &data,
        cuts: &cuts,
    };
    let (expected, _) = schedule.run_sequential();
    assert!(!expected.is_empty());
    for shards in [1usize, 2, 8] {
        let (got, _) = schedule.run_sharded(shards);
        assert_eq!(got, expected, "diverged at {shards} shards");
    }
}
