//! Checksum helpers shared by the hub-equivalence integration tests, so
//! both suites (`hub_sharded_equivalence`, `timed_equivalence`) fold the
//! exact same encoding of `SlideResult` — one definition, one oracle.

use std::collections::BTreeMap;

use sap::prelude::*;

/// FNV-1a step over one u64 word.
fn fold_word(acc: u64, word: u64) -> u64 {
    let mut h = acc;
    let mut x = word;
    for _ in 0..8 {
        h ^= x & 0xFF;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        x >>= 8;
    }
    h
}

/// Folds one update — slide index, the full `TopKEvent` delta stream,
/// and the snapshot — into a query's running checksum. Order sensitive,
/// so two hubs agree iff they emitted identical event streams.
fn fold_update(acc: u64, result: &SlideResult) -> u64 {
    let mut h = fold_word(acc, result.slide);
    for event in &result.events {
        h = match event {
            TopKEvent::Entered(o) => fold_word(fold_word(fold_word(h, 1), o.id), o.score.to_bits()),
            TopKEvent::Exited(o) => fold_word(fold_word(fold_word(h, 2), o.id), o.score.to_bits()),
            TopKEvent::Unchanged => fold_word(h, 3),
        };
    }
    for o in &result.snapshot {
        h = fold_word(fold_word(h, o.id), o.score.to_bits());
    }
    h
}

const SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds a batch of updates into per-query running checksums.
pub fn fold_all(sums: &mut BTreeMap<QueryId, u64>, updates: Vec<QueryUpdate>) {
    for u in updates {
        let acc = sums.entry(u.query).or_insert(SEED);
        *acc = fold_update(*acc, &u.result);
    }
}
