//! Property-based tests (proptest): arbitrary streams and window
//! geometries, algorithm equivalence, and structural invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use sap::baselines::{KSkyband, MinTopK, NaiveTopK, Sma};
use sap::core::{Sap, SapConfig};
use sap::stream::{run_collecting, Object, SlidingTopK, WindowSpec};

/// Builds a stream from raw score choices; a small score alphabet makes
/// ties frequent, which is where bugs hide.
fn stream(scores: Vec<u8>) -> Vec<Object> {
    scores
        .into_iter()
        .enumerate()
        .map(|(i, s)| Object::new(i as u64, s as f64))
        .collect()
}

/// Window geometry: s divides n, 1 ≤ k ≤ n.
fn geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=25, 1usize..=10)
        .prop_flat_map(|(m, s)| {
            let n = m * s;
            (Just(n), 1..=n, Just(s))
        })
        .prop_map(|(n, k, s)| (n, k, s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fundamental contract: every algorithm equals the re-scanning
    /// oracle on arbitrary tie-heavy streams and window geometries.
    #[test]
    fn all_algorithms_match_oracle(
        scores in vec(0u8..16, 0..400),
        (n, k, s) in geometry(),
    ) {
        let data = stream(scores);
        let spec = WindowSpec::new(n, k, s).unwrap();
        let (_, expect) = run_collecting(&mut NaiveTopK::new(spec), &data);

        let mut algs: Vec<Box<dyn SlidingTopK>> = vec![
            Box::new(Sap::new(SapConfig::new(spec))),
            Box::new(Sap::new(SapConfig::dynamic(spec))),
            Box::new(Sap::new(SapConfig::equal(spec, None))),
            Box::new(Sap::new(SapConfig::equal(spec, None).without_savl())),
            Box::new(Sap::new(SapConfig::equal(spec, None).without_delay())),
            Box::new(MinTopK::new(spec)),
            Box::new(KSkyband::new(spec)),
            Box::new(Sma::new(spec)),
        ];
        for alg in &mut algs {
            let name = alg.name().to_string();
            let (_, got) = run_collecting(alg.as_mut(), &data);
            prop_assert_eq!(&got, &expect, "{} diverged (n={},k={},s={})", name, n, k, s);
        }
    }

    /// Results are always sorted descending, unique, and within the window.
    #[test]
    fn result_wellformedness(
        scores in vec(0u8..100, 0..300),
        (n, k, s) in geometry(),
    ) {
        let data = stream(scores);
        let spec = WindowSpec::new(n, k, s).unwrap();
        let mut alg = Sap::new(SapConfig::new(spec));
        let mut fed = 0usize;
        for batch in data.chunks_exact(s) {
            let top = alg.slide(batch);
            fed += s;
            let window_lo = fed.saturating_sub(n) as u64;
            prop_assert!(top.len() <= k);
            prop_assert!(top.len() == k.min(fed.min(n)) || top.len() == k,
                "result too short: {} of {}", top.len(), k.min(fed));
            for w in top.windows(2) {
                prop_assert!(w[0].key() > w[1].key(), "not strictly descending");
            }
            for o in top {
                prop_assert!(o.id >= window_lo && o.id < fed as u64, "expired object in result");
            }
        }
    }

    /// MinTopK's candidate bound (§2.1): |C| ≤ n·k / max(s, k) + k.
    #[test]
    fn mintopk_candidate_bound(
        scores in vec(0u8..255, 200..600),
        (n, k, s) in geometry(),
    ) {
        let data = stream(scores);
        let spec = WindowSpec::new(n, k, s).unwrap();
        let mut alg = MinTopK::new(spec);
        for batch in data.chunks_exact(s) {
            alg.slide(batch);
            let bound = n * k / s.max(k) + k;
            prop_assert!(
                alg.candidate_count() <= bound,
                "|C| = {} exceeds bound {}",
                alg.candidate_count(),
                bound
            );
        }
    }

    /// SAP's candidate structures stay bounded by Eq. (1) plus the live
    /// buffers — specifically they never approach the window size on
    /// random streams with n ≫ k.
    #[test]
    fn sap_candidates_bounded(
        scores in vec(0u8..255, 400..800),
        s in 1usize..=8,
    ) {
        let n = 40 * s;
        let k = 3usize;
        let data = stream(scores);
        let spec = WindowSpec::new(n, k, s).unwrap();
        let mut alg = Sap::new(SapConfig::equal(spec, None));
        let p = alg.unit_target();
        let m = n.div_ceil(p);
        let bound = m * k + p * k / s.max(k) + 2 * k;
        for batch in data.chunks_exact(s) {
            alg.slide(batch);
            prop_assert!(
                alg.candidate_count() <= bound,
                "candidates {} exceed Eq.(1) bound {} (p={}, m={})",
                alg.candidate_count(),
                bound,
                p,
                m
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Chunked delivery equivalence: feeding the same stream through any
    /// valid slide size yields results consistent with the oracle at that
    /// slide size (no hidden cross-slide state).
    #[test]
    fn restart_determinism(
        scores in vec(0u8..50, 100..300),
    ) {
        let data = stream(scores);
        let spec = WindowSpec::new(60, 6, 6).unwrap();
        let (_, a) = run_collecting(&mut Sap::new(SapConfig::new(spec)), &data);
        let (_, b) = run_collecting(&mut Sap::new(SapConfig::new(spec)), &data);
        prop_assert_eq!(a, b, "engine must be deterministic");
    }
}
