//! Cross-crate structural tests: the S-AVL against a brute-force
//! meaningful-set model, the candidate list against a reference dominance
//! counter, and the statistics substrate against closed forms.

use proptest::collection::vec;
use proptest::prelude::*;

use sap::avltree::{AvlMap, AvlSet};
use sap::stats::{exact_u_distribution, rank_sum};
use sap::stream::{Object, ScoreKey};

fn key(id: u64, score: f64) -> ScoreKey {
    ScoreKey { score, id }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// AvlMap behaves exactly like BTreeMap under arbitrary operation
    /// sequences, including order statistics.
    #[test]
    fn avl_map_model_test(ops in vec((0u8..4, 0u32..64), 0..300)) {
        let mut subject: AvlMap<u32, u32> = AvlMap::new();
        let mut model = std::collections::BTreeMap::new();
        for (i, (op, k)) in ops.into_iter().enumerate() {
            match op {
                0 => {
                    prop_assert_eq!(subject.insert(k, i as u32), model.insert(k, i as u32));
                }
                1 => {
                    prop_assert_eq!(subject.remove(&k), model.remove(&k));
                }
                2 => {
                    prop_assert_eq!(subject.get(&k), model.get(&k));
                    // rank = number of keys strictly below k
                    let rank = model.range(..k).count();
                    prop_assert_eq!(subject.rank(&k), rank);
                }
                _ => {
                    prop_assert_eq!(subject.pop_min(), model.pop_first());
                }
            }
            prop_assert_eq!(subject.len(), model.len());
        }
        // order statistics across the final state
        for (i, (k, v)) in model.iter().enumerate() {
            prop_assert_eq!(subject.select(i), Some((k, v)));
        }
        prop_assert!(subject.iter().map(|(k, _)| *k).eq(model.keys().copied()));
        prop_assert!(subject
            .iter_rev()
            .map(|(k, _)| *k)
            .eq(model.keys().rev().copied()));
    }

    /// AvlSet pop_max drains in strictly descending order.
    #[test]
    fn avl_set_drains_descending(keys in vec(0u32..1000, 0..200)) {
        let mut s = AvlSet::new();
        for k in &keys {
            s.insert(*k);
        }
        let mut prev: Option<u32> = None;
        while let Some(m) = s.pop_max() {
            if let Some(p) = prev {
                prop_assert!(m < p);
            }
            prev = Some(m);
        }
        prop_assert!(s.is_empty());
    }

    /// Rank sums of the two samples always add to N(N+1)/2, ties included.
    #[test]
    fn rank_sum_partition_property(
        a in vec(0u8..20, 1..30),
        b in vec(0u8..20, 1..30),
    ) {
        let s1: Vec<f64> = a.iter().map(|&x| x as f64).collect();
        let s2: Vec<f64> = b.iter().map(|&x| x as f64).collect();
        let n = (s1.len() + s2.len()) as f64;
        let total = n * (n + 1.0) / 2.0;
        let r1 = rank_sum(&s1, &s2);
        let r2 = rank_sum(&s2, &s1);
        prop_assert!((r1 + r2 - total).abs() < 1e-9);
        // each rank sum is within its feasible range
        let n1 = s1.len() as f64;
        prop_assert!(r1 >= n1 * (n1 + 1.0) / 2.0 - 1e-9);
        prop_assert!(r1 <= n1 * (2.0 * n - n1 + 1.0) / 2.0 + 1e-9);
    }

    /// The exact Mann–Whitney U distribution sums to C(n1+n2, n1) and is
    /// symmetric for every small sample size.
    #[test]
    fn u_distribution_properties(n1 in 1usize..7, n2 in 1usize..7) {
        let counts = exact_u_distribution(n1, n2);
        prop_assert_eq!(counts.len(), n1 * n2 + 1);
        let total: f64 = counts.iter().sum();
        let binom = {
            let mut c = 1f64;
            for i in 0..n1 {
                c = c * (n1 + n2 - i) as f64 / (i + 1) as f64;
            }
            c
        };
        prop_assert!((total - binom).abs() < 1e-6, "total {} vs C = {}", total, binom);
        for i in 0..counts.len() {
            prop_assert_eq!(counts[i], counts[counts.len() - 1 - i]);
        }
    }
}

mod savl_model {
    use super::*;
    use sap::core::meaningful::build_savl;
    use sap::stream::OpStats;

    /// Brute-force reference: an object can still become a result iff
    /// fewer than `budget` *newer* objects outrank it under the result
    /// order (score, then recency). Equal-score newer objects count: they
    /// outrank and outlive the older one, which is exactly why the S-AVL
    /// may prune on ties.
    fn reference(objs: &[Object], budget: usize) -> Vec<ScoreKey> {
        objs.iter()
            .filter(|o| {
                objs.iter()
                    .filter(|d| d.id > o.id && d.key() > o.key())
                    .count()
                    < budget
            })
            .map(Object::key)
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The S-AVL never loses a true k-skyband object, for arbitrary
        /// streams and stack budgets, and drains in descending order.
        #[test]
        fn savl_completeness(
            scores in vec(0u16..64, 1..120),
            budget in 1usize..8,
        ) {
            let objs: Vec<Object> = scores
                .iter()
                .enumerate()
                .map(|(i, &s)| Object::new(i as u64, s as f64))
                .collect();
            let mut stats = OpStats::default();
            let mut savl = build_savl(&objs, 0, &[], None, budget, 1, budget, &mut stats);
            let mut drained = Vec::new();
            while let Some(k) = savl.pop_max() {
                drained.push(k);
            }
            // descending pops
            for w in drained.windows(2) {
                prop_assert!(w[0] > w[1]);
            }
            // completeness
            for want in reference(&objs, budget) {
                prop_assert!(
                    drained.contains(&want),
                    "lost true skyband object {:?}",
                    want
                );
            }
        }

        /// Expiry + pops interleaved: no dead object ever escapes, no live
        /// skyband object is lost.
        #[test]
        fn savl_expiry_safety(
            scores in vec(0u16..64, 10..120),
            budget in 1usize..6,
            cut in 0usize..10,
        ) {
            let objs: Vec<Object> = scores
                .iter()
                .enumerate()
                .map(|(i, &s)| Object::new(i as u64, s as f64))
                .collect();
            let cutoff = (objs.len() * cut / 10) as u64;
            let mut stats = OpStats::default();
            let mut savl = build_savl(&objs, 0, &[], None, budget, 1, budget, &mut stats);
            let mut drained = Vec::new();
            while let Some(k) = savl.pop_max_alive(cutoff) {
                prop_assert!(k.id >= cutoff, "expired object escaped");
                drained.push(k);
            }
            // completeness among live objects: every true skyband member of
            // the ORIGINAL slice that is still alive must come out
            let alive_ref: Vec<ScoreKey> = reference(&objs, budget)
                .into_iter()
                .filter(|k| k.id >= cutoff)
                .collect();
            for want in alive_ref {
                prop_assert!(drained.contains(&want), "lost live object {:?}", want);
            }
        }
    }
}

mod candidate_model {
    use super::*;
    use sap::core::candidates::CandidateList;
    use sap::stream::OpStats;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// After merging any sequence of partitions, every surviving
        /// candidate has fewer than k candidate-dominators, and no object
        /// with fewer than k dominators among all merged keys was evicted.
        #[test]
        fn merge_refine_is_exact_skyband_over_pk_union(
            partitions in vec(vec(0u16..50, 1..6), 1..8),
            k in 1usize..5,
        ) {
            let mut c = CandidateList::new(k);
            let mut stats = OpStats::default();
            let mut all: Vec<ScoreKey> = Vec::new();
            let mut id = 0u64;
            for (pid, scores) in partitions.iter().enumerate() {
                let mut keys: Vec<ScoreKey> = scores
                    .iter()
                    .map(|&s| {
                        let kk = key(id, s as f64);
                        id += 1;
                        kk
                    })
                    .collect();
                all.extend(keys.iter().copied());
                keys.sort_unstable_by(|a, b| b.cmp(a));
                c.merge_seal(pid as u32, &keys, &mut stats);
            }
            let surviving: Vec<ScoreKey> = c.iter_desc().copied().collect();
            for x in &all {
                // key-order outranking by newer objects (the refinement
                // counts equal-score newer entries, which outrank and
                // outlive the older one)
                let dom = all.iter().filter(|d| d.id > x.id && *d > x).count();
                if dom < k {
                    prop_assert!(
                        surviving.contains(x),
                        "non-dominated key {:?} was evicted (dom={} < k={})",
                        x, dom, k
                    );
                }
            }
        }
    }
}
