//! Failure-injection and pathological-input battery: extreme scores,
//! regime whiplash, long mixed streams, and hostile window geometries.

use sap::baselines::{KSkyband, MinTopK, NaiveTopK, Sma};
use sap::core::{Sap, SapConfig};
use sap::stream::{run_collecting, Object, SlidingTopK, WindowSpec};

fn algos(spec: WindowSpec) -> Vec<Box<dyn SlidingTopK>> {
    vec![
        Box::new(Sap::new(SapConfig::new(spec))),
        Box::new(Sap::new(SapConfig::dynamic(spec))),
        Box::new(Sap::new(SapConfig::equal(spec, None))),
        Box::new(MinTopK::new(spec)),
        Box::new(KSkyband::new(spec)),
        Box::new(Sma::new(spec)),
    ]
}

fn check(data: &[Object], spec: WindowSpec, label: &str) {
    let (_, expect) = run_collecting(&mut NaiveTopK::new(spec), data);
    for mut alg in algos(spec) {
        let name = alg.name().to_string();
        let (_, got) = run_collecting(alg.as_mut(), data);
        assert_eq!(got, expect, "{name} diverged on {label}");
    }
}

fn objects(scores: impl IntoIterator<Item = f64>) -> Vec<Object> {
    scores
        .into_iter()
        .enumerate()
        .map(|(i, s)| Object::new(i as u64, s))
        .collect()
}

#[test]
fn extreme_score_magnitudes() {
    // alternating huge/tiny/negative magnitudes, including subnormals
    let data = objects((0..800).map(|i| match i % 7 {
        0 => 1.0e300,
        1 => -1.0e300,
        2 => 1.0e-300,
        3 => -1.0e-300,
        4 => 0.0,
        5 => -0.0,
        _ => (i as f64) * 1.0e150,
    }));
    check(
        &data,
        WindowSpec::new(80, 6, 8).unwrap(),
        "extreme magnitudes",
    );
}

#[test]
fn regime_whiplash() {
    // violent alternation between flat, spike, and crash regimes — the
    // worst case for TBUI's threshold and the WRT's samples
    let data = objects((0..3000).map(|i| {
        let regime = (i / 100) % 4;
        match regime {
            0 => 100.0,                      // constant plateau (all ties)
            1 => 1.0e6 + i as f64,           // spike, rising
            2 => 1.0 / (1.0 + i as f64),     // crash, falling
            _ => ((i * 7919) % 1000) as f64, // noise
        }
    }));
    check(
        &data,
        WindowSpec::new(300, 10, 10).unwrap(),
        "regime whiplash",
    );
}

#[test]
fn single_object_window() {
    let data = objects((0..50).map(|i| (i % 7) as f64));
    check(&data, WindowSpec::new(1, 1, 1).unwrap(), "n = k = s = 1");
}

#[test]
fn k_equals_n() {
    // every window object is a result; ordering stress only
    let data = objects((0..600).map(|i| ((i * 31) % 17) as f64));
    check(&data, WindowSpec::new(30, 30, 6).unwrap(), "k = n");
}

#[test]
fn duplicate_heavy_blocks() {
    // long runs of one value punctuated by single outliers
    let data = objects((0..2000).map(|i| if i % 97 == 0 { 1000.0 + i as f64 } else { 42.0 }));
    check(
        &data,
        WindowSpec::new(200, 5, 20).unwrap(),
        "duplicate blocks",
    );
}

#[test]
fn sawtooth_aligned_with_partitions() {
    // period chosen to resonate with the equal-partition size, so partition
    // boundaries repeatedly land on score cliffs
    let spec = WindowSpec::new(400, 8, 8).unwrap();
    let unit = Sap::new(SapConfig::equal(spec, None)).unit_target();
    let data = objects((0..4000).map(|i| (i % unit) as f64));
    check(&data, spec, "partition-aligned sawtooth");
}

#[test]
fn very_long_mixed_stream() {
    // 100k objects cycling through all regimes; many full window turnovers
    let data = objects((0..100_000).map(|i| {
        let phase = (i / 5_000) % 3;
        match phase {
            0 => ((i * 2_654_435_761u64) % 100_000) as f64 / 100.0,
            1 => (100_000 - (i % 100_000)) as f64,
            _ => (i % 10) as f64,
        }
    }));
    let spec = WindowSpec::new(2_000, 25, 50).unwrap();
    check(&data, spec, "long mixed stream");
}

#[test]
fn results_stable_under_reconfiguration_variants() {
    // every SAP configuration knob combination answers identically
    let data = objects((0..4000).map(|i| ((i * 131) % 9973) as f64));
    let spec = WindowSpec::new(500, 10, 25).unwrap();
    let (_, reference) = run_collecting(&mut NaiveTopK::new(spec), &data);
    let configs = [
        SapConfig::new(spec),
        SapConfig::new(spec).without_delay(),
        SapConfig::new(spec).without_savl(),
        SapConfig::new(spec).without_delay().without_savl(),
        SapConfig::dynamic(spec),
        SapConfig::dynamic(spec).without_savl(),
        SapConfig::equal(spec, Some(2)),
        SapConfig::equal(spec, Some(20)),
    ];
    for cfg in configs {
        let mut alg = Sap::new(cfg);
        let name = alg.name().to_string();
        let (_, got) = run_collecting(&mut alg, &data);
        assert_eq!(got, reference, "{name} with cfg {cfg:?}");
    }
}

#[test]
fn alpha_variations_do_not_affect_correctness() {
    // the WRT significance level tunes cost, never results
    let data = objects((0..5000).map(|i| ((i * 271) % 7919) as f64));
    let spec = WindowSpec::new(500, 8, 10).unwrap();
    let (_, reference) = run_collecting(&mut NaiveTopK::new(spec), &data);
    for alpha in [0.01, 0.05, 0.2, 0.5] {
        let mut cfg = SapConfig::dynamic(spec);
        cfg.alpha = alpha;
        let (_, got) = run_collecting(&mut Sap::new(cfg), &data);
        assert_eq!(got, reference, "alpha = {alpha}");
    }
}
