//! Every algorithm must produce exactly the oracle's top-k sequence on
//! every dataset and parameter combination — warm-up, ties, tumbling
//! windows, and adversarial orderings included.

use sap::baselines::{KSkyband, MinTopK, NaiveTopK, Sma};
use sap::core::{Sap, SapConfig};
use sap::stream::generators::{Dataset, Workload};
use sap::stream::{run_collecting, Object, SlidingTopK, WindowSpec};

fn all_algorithms(spec: WindowSpec) -> Vec<Box<dyn SlidingTopK>> {
    vec![
        Box::new(Sap::new(SapConfig::new(spec))),
        Box::new(Sap::new(SapConfig::dynamic(spec))),
        Box::new(Sap::new(SapConfig::equal(spec, None))),
        Box::new(Sap::new(SapConfig::equal(spec, Some(5)))),
        Box::new(Sap::new(SapConfig::equal(spec, None).without_savl())),
        Box::new(Sap::new(SapConfig::equal(spec, None).without_delay())),
        Box::new(Sap::new(SapConfig::enhanced(spec).without_delay())),
        Box::new(MinTopK::new(spec)),
        Box::new(KSkyband::new(spec)),
        Box::new(Sma::new(spec)),
    ]
}

fn check_all(ds: Dataset, len: usize, n: usize, k: usize, s: usize, seed: u64) {
    let data = ds.generate(len, seed);
    let spec = WindowSpec::new(n, k, s).unwrap();
    let (_, expect) = run_collecting(&mut NaiveTopK::new(spec), &data);
    for mut alg in all_algorithms(spec) {
        let name = alg.name().to_string();
        let (_, got) = run_collecting(alg.as_mut(), &data);
        assert_eq!(got.len(), expect.len());
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert_eq!(
                g,
                e,
                "{name} diverged from oracle at slide {i} on {} (n={n},k={k},s={s},seed={seed})",
                ds.name()
            );
        }
    }
}

#[test]
fn every_dataset_default_geometry() {
    for (i, ds) in [
        Dataset::Stock,
        Dataset::Trip,
        Dataset::Planet,
        Dataset::TimeU,
        Dataset::TimeR { period: 300.0 },
        Dataset::Decreasing,
        Dataset::Increasing,
        Dataset::Sawtooth { ramp: 41 },
        Dataset::Constant,
    ]
    .into_iter()
    .enumerate()
    {
        check_all(ds, 2_000, 200, 8, 10, 100 + i as u64);
    }
}

#[test]
fn parameter_grid_on_random_stream() {
    // (n, k, s) combinations stressing every regime the paper discusses
    let grid = [
        (100, 1, 1),    // minimal k
        (100, 1, 100),  // tumbling, k = 1
        (120, 12, 4),   // k > s
        (120, 4, 12),   // s > k
        (200, 20, 200), // tumbling with large k
        (150, 50, 5),   // k = n/3
        (90, 89, 3),    // k ≈ n (degenerate geometry)
        (64, 8, 8),     // powers of two
        (500, 10, 25),  // typical
    ];
    for (i, (n, k, s)) in grid.into_iter().enumerate() {
        check_all(Dataset::TimeU, 6 * n, n, k, s, 200 + i as u64);
    }
}

#[test]
fn parameter_grid_on_trending_streams() {
    let grid = [(150, 10, 5), (150, 10, 30), (200, 5, 40)];
    for (i, (n, k, s)) in grid.into_iter().enumerate() {
        check_all(Dataset::Decreasing, 6 * n, n, k, s, 300 + i as u64);
        check_all(
            Dataset::Sawtooth { ramp: 77 },
            6 * n,
            n,
            k,
            s,
            400 + i as u64,
        );
        check_all(
            Dataset::TimeR { period: 100.0 },
            6 * n,
            n,
            k,
            s,
            500 + i as u64,
        );
    }
}

#[test]
fn heavy_tie_streams() {
    // blocks of identical scores interleaved — worst case for every
    // tie-break path
    let len = 1200usize;
    let data: Vec<Object> = (0..len)
        .map(|i| Object::new(i as u64, ((i / 7) % 5) as f64))
        .collect();
    let spec = WindowSpec::new(120, 9, 6).unwrap();
    let (_, expect) = run_collecting(&mut NaiveTopK::new(spec), &data);
    for mut alg in all_algorithms(spec) {
        let name = alg.name().to_string();
        let (_, got) = run_collecting(alg.as_mut(), &data);
        assert_eq!(got, expect, "{name} mishandles ties");
    }
}

#[test]
fn stream_shorter_than_window() {
    // the window never fills: pure warm-up behaviour
    let data = Dataset::TimeU.generate(90, 1);
    let spec = WindowSpec::new(300, 7, 30).unwrap();
    let (_, expect) = run_collecting(&mut NaiveTopK::new(spec), &data);
    for mut alg in all_algorithms(spec) {
        let name = alg.name().to_string();
        let (_, got) = run_collecting(alg.as_mut(), &data);
        assert_eq!(got, expect, "{name} warm-up divergence");
    }
}

#[test]
fn long_run_stability() {
    // many window turnovers: state must not rot over time
    check_all(Dataset::Stock, 30_000, 300, 10, 15, 9_001);
}
