//! Allocation-regression gate for the zero-allocation publish path.
//!
//! The publish plane's contract (see `sap_stream::events` and
//! `SlideScratch`): after warm-up,
//!
//! * a push that only buffers (no slide completed) performs **zero**
//!   heap allocations;
//! * a completed slide performs **at most one** allocation in the
//!   session layer — the shared `Arc` snapshot, and only when the result
//!   changed (quiet slides re-emit the previous `Arc`);
//! * engine-internal churn (candidate structures, partition recycling)
//!   is pooled to amortized ≲1 allocation per slide.
//!
//! These tests pin those bounds with a counting global allocator so a
//! regression fails CI instead of landing silently. The pre-refactor
//! path allocated 5–10× per slide (snapshot collect + clone, two diff
//! buffers, event list, digest materialization), so the pinned bounds
//! have real teeth while leaving room for engine-internal noise.
//!
//! Gated to release builds: `cargo test` (debug) reports them as
//! ignored; the CI release matrix and bench-smoke run them for real.
//! Allocation counts here are deterministic — the workloads are seeded
//! and single-threaded — but the counter is process-global, so every
//! test serializes on one lock.

use std::sync::Mutex;

use sap::prelude::*;
use sap_bench::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Serializes measured regions: the counter is process-global and the
/// test harness runs tests on multiple threads.
static LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` and returns (result, allocations performed).
fn measured<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = ALLOC.allocations();
    let result = f();
    (result, ALLOC.allocations() - before)
}

/// Deterministic score stream (LCG), scores in [0, 1000).
fn score(i: u64) -> f64 {
    let x = i
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((x >> 33) % 1000) as f64
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation bounds are pinned for release builds"
)]
fn warm_count_session_buffering_push_is_allocation_free() {
    let _guard = LOCK.lock().unwrap();
    let mut session = Query::window(400).top(2).slide(10).session().unwrap();
    // warm-up: several full windows so partitions have sealed, expired,
    // and been reclaimed into the spare pools
    for i in 0..2_000u64 {
        session.push_one(Object::new(i, score(i)));
    }
    // a push that does not complete a slide must never touch the heap
    for i in 2_000..2_009u64 {
        let (result, allocs) = measured(|| session.push_one(Object::new(i, score(i))));
        assert!(result.is_none(), "9 pushes into s = 10 complete no slide");
        assert_eq!(allocs, 0, "buffering push {i} allocated");
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation bounds are pinned for release builds"
)]
fn warm_count_session_steady_state_stays_under_pinned_bound() {
    let _guard = LOCK.lock().unwrap();
    // MinTopK's steady state is fully pooled, so the bound is exact:
    // at most one allocation (the Arc snapshot) per *changed* slide
    let mut session = Query::window(400)
        .top(2)
        .slide(10)
        .algorithm(AlgorithmKind::MinTopK)
        .session()
        .unwrap();
    for i in 0..2_000u64 {
        session.push_one(Object::new(i, score(i)));
    }
    let ((slides, changed), allocs) = measured(|| {
        let mut slides = 0u64;
        let mut changed = 0u64;
        for i in 2_000..12_000u64 {
            if let Some(result) = session.push_one(Object::new(i, score(i))) {
                slides += 1;
                if result.changed() {
                    changed += 1;
                }
            }
        }
        (slides, changed)
    });
    assert_eq!(slides, 1_000);
    assert!(changed > 0, "workload must exercise changed slides");
    assert!(
        allocs <= changed,
        "steady state: {allocs} allocations for {changed} changed slides \
         (pinned bound: ≤ 1 per changed slide; the legacy path paid ≥ 5 per slide)"
    );

    // SAP's partition machinery may churn its candidate BTree, but the
    // recycled partitions/meaningful sets must keep it ≤ 2 per slide
    let mut sap = Query::window(400).top(2).slide(10).session().unwrap();
    for i in 0..2_000u64 {
        sap.push_one(Object::new(i, score(i)));
    }
    let (slides, allocs) = measured(|| {
        let mut slides = 0u64;
        for i in 2_000..12_000u64 {
            if sap.push_one(Object::new(i, score(i))).is_some() {
                slides += 1;
            }
        }
        slides
    });
    assert_eq!(slides, 1_000);
    assert!(
        allocs <= 2 * slides,
        "SAP steady state: {allocs} allocations for {slides} slides \
         (pinned bound: ≤ 2 per slide)"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation bounds are pinned for release builds"
)]
fn warm_timed_session_steady_state_stays_under_pinned_bound() {
    let _guard = LOCK.lock().unwrap();
    let mut session = Query::window_duration(400)
        .slide_duration(100)
        .top(3)
        .timed_session()
        .unwrap();
    // ~25 objects per slide; warm through several windows
    let mut warm_slides = 0usize;
    for i in 0..500u64 {
        warm_slides += session
            .push_timed(&[TimedObject::new(i, i * 4, score(i))])
            .len();
    }
    assert!(warm_slides > 10, "warm-up must close slides");
    let ((slides, changed), allocs) = measured(|| {
        let mut slides = 0u64;
        let mut changed = 0u64;
        let mut out = Vec::with_capacity(4);
        for i in 500..4_500u64 {
            out.clear();
            session.push_timed_into(&[TimedObject::new(i, i * 4, score(i))], &mut out);
            for result in &out {
                slides += 1;
                if result.changed() {
                    changed += 1;
                }
            }
        }
        (slides, changed)
    });
    assert_eq!(slides, 160, "4000 objects × 4 ticks / 100-tick slides");
    assert!(changed > 0);
    // the adapter's digest plane is borrow-based and the consumer pooled:
    // the Arc per changed slide plus bounded reduced-engine churn
    assert!(
        allocs <= 2 * slides,
        "timed steady state: {allocs} allocations for {slides} slides \
         (pinned bound: ≤ 2 per slide; the legacy adapter paid ~10)"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation bounds are pinned for release builds"
)]
fn warm_hub_publish_without_slides_is_allocation_free() {
    let _guard = LOCK.lock().unwrap();
    let mut hub = Hub::new();
    let mut ids = Vec::new();
    for q in 0..50u64 {
        let k = 1 + (q as usize % 3);
        ids.push(hub.register(&Query::window(200).top(k).slide(10)).unwrap());
    }
    // warm: every session is phase-aligned (registered together), so
    // multiples of s = 10 complete slides everywhere
    let mut warm = Vec::new();
    for i in 0..1_000u64 {
        warm.push(Object::new(i, score(i)));
    }
    for chunk in warm.chunks(10) {
        hub.publish(chunk);
    }
    // half a slide: every session buffers, none completes — the publish
    // (including its returned empty Vec) must not touch the heap
    let half: Vec<Object> = (1_000..1_005u64)
        .map(|i| Object::new(i, score(i)))
        .collect();
    let (updates, allocs) = measured(|| hub.publish(&half).len());
    assert_eq!(updates, 0);
    assert_eq!(allocs, 0, "no-slide publish must be allocation-free");

    // completing the slide: one output Vec (reserved once from the
    // retained hint) plus at most one Arc per changed update
    let rest: Vec<Object> = (1_005..1_010u64)
        .map(|i| Object::new(i, score(i)))
        .collect();
    let (updates, allocs) = measured(|| hub.publish(&rest).len());
    assert_eq!(updates, ids.len(), "every session completes");
    assert!(
        allocs <= 1 + updates as u64,
        "slide-completing publish: {allocs} allocations for {updates} updates \
         (pinned bound: 1 output Vec + ≤ 1 Arc per update)"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation bounds are pinned for release builds"
)]
fn warm_grouped_hub_publish_meets_the_isolated_pinned_bounds() {
    let _guard = LOCK.lock().unwrap();
    // The shared count plane must not regress the zero-allocation
    // steady state: the group ring, the group digest producer, and every
    // member's reduced-engine scratch are pooled after warm-up, so a
    // buffering publish (group slide still open) is allocation-free and
    // a group hit pays only the output Vec plus per-update Arcs and
    // bounded reduced-engine churn.
    let mut hub = Hub::new();
    let mut ids = Vec::new();
    for q in 0..50u64 {
        let k = 1 + (q as usize % 3);
        let n = 200 + 10 * (q as usize % 4);
        // varied (n, k) views, one geometry class: registered together
        // with equal s, so every query shares one group ring and digest
        ids.push(
            hub.register_grouped(&Query::window(n).top(k).slide(10))
                .unwrap(),
        );
    }
    let mut warm = Vec::new();
    for i in 0..1_000u64 {
        warm.push(Object::new(i, score(i)));
    }
    for chunk in warm.chunks(10) {
        hub.publish(chunk);
    }
    let stats = hub.stats();
    assert_eq!(stats.count_groups, 1, "one geometry class");
    assert_eq!(stats.grouped_queries, ids.len());
    assert!(stats.count_group_hits > 0, "warm-up must serve group hits");

    // half a slide: the group ring appends and the group digest buffers,
    // no member is touched — the publish must not allocate at all
    let half: Vec<Object> = (1_000..1_005u64)
        .map(|i| Object::new(i, score(i)))
        .collect();
    let (updates, allocs) = measured(|| hub.publish(&half).len());
    assert_eq!(updates, 0);
    assert_eq!(allocs, 0, "group-buffering publish must be allocation-free");

    // completing the group slide serves all 50 members from one shared
    // digest: one output Vec + ≤ 1 Arc per update + the reduced engines'
    // pooled churn (≤ 1 per update, same headroom the timed plane gets)
    let rest: Vec<Object> = (1_005..1_010u64)
        .map(|i| Object::new(i, score(i)))
        .collect();
    let (updates, allocs) = measured(|| hub.publish(&rest).len());
    assert_eq!(
        updates,
        ids.len(),
        "every member is served on the group hit"
    );
    assert!(
        allocs <= 1 + 2 * updates as u64,
        "group-hit publish: {allocs} allocations for {updates} updates \
         (pinned bound: 1 output Vec + ≤ 2 per update)"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation bounds are pinned for release builds"
)]
fn classed_quiet_slide_close_is_allocation_free_per_member() {
    let _guard = LOCK.lock().unwrap();
    // The result-class floor: a quiet slide close (top-k unchanged) on a
    // warm class touches the heap **zero** times per member — the class
    // re-emits the previous `Arc` snapshot and its inline `[Unchanged]`
    // event list, and per-member emission is a refcount bump plus the
    // QueryId/slide tag stamped into the output Vec. The only permitted
    // allocation is that output Vec itself.
    let mut hub = Hub::new();
    let members = 50usize;
    for _ in 0..members {
        // identical geometry: one group, one 50-member result class
        hub.register_grouped(&Query::window(400).top(1).slide(10))
            .unwrap();
    }
    // one spike per window length dominates top-1 for 40 straight
    // slides, so closes between spikes are quiet
    let spiked = |i: u64| {
        if i.is_multiple_of(400) {
            10_000.0
        } else {
            score(i)
        }
    };
    let warm: Vec<Object> = (0..1_000u64).map(|i| Object::new(i, spiked(i))).collect();
    for chunk in warm.chunks(10) {
        hub.publish(chunk);
    }
    let stats = hub.stats();
    assert_eq!(stats.result_classes, 1, "one geometry class");
    assert!(stats.class_hits > 0, "warm-up must serve classed closes");

    // arrivals 1000..1150 keep the spike at 800 inside the window: every
    // close re-emits the same top-1, i.e. 15 quiet classed closes
    let mut next = 1_000u64;
    for round in 0..15u64 {
        let batch: Vec<Object> = (next..next + 10)
            .map(|i| Object::new(i, spiked(i)))
            .collect();
        next += 10;
        let (updates, allocs) = measured(|| hub.publish(&batch));
        assert_eq!(updates.len(), members, "every member rides the close");
        for u in &updates {
            assert!(
                !u.result.changed(),
                "round {round}: the spike keeps the close quiet"
            );
        }
        assert!(
            allocs <= 1,
            "round {round}: quiet classed close paid {allocs} allocations \
             for {members} members (pinned bound: the output Vec only — \
             0 per member beyond the tag)"
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation bounds are pinned for release builds"
)]
fn warm_async_hub_quiet_publish_is_allocation_free() {
    let _guard = LOCK.lock().unwrap();
    // The async hub's quiet publish is a single lock crossing that
    // enqueues a pooled `Arc` batch on every non-empty shard: after
    // warm-up (pool slots filled at this batch length, target scratch
    // sized, queues at their fixed bound) the hub-side path must not
    // touch the heap at all. The flush barrier before each measured
    // publish settles the pool refcounts, so the measurement is
    // deterministic despite the worker threads.
    let mut hub = AsyncHub::new(8, 2);
    for q in 0..50u64 {
        let k = 1 + (q as usize % 3);
        hub.register(&Query::window(200).top(k).slide(100)).unwrap();
    }
    let warm: Vec<Object> = (0..1_000u64).map(|i| Object::new(i, score(i))).collect();
    for chunk in warm.chunks(5) {
        hub.publish(chunk).unwrap();
    }
    assert!(
        !hub.drain().unwrap().is_empty(),
        "warm-up must close slides"
    );
    // Warm-up may legitimately park (the publisher can outrun two
    // workers across slide boundaries); the quiet path must not add to
    // that count.
    let parks_after_warm = hub.publisher_parks();

    let mut next = 1_000u64;
    for round in 0..8u64 {
        let batch: Vec<Object> = (next..next + 5).map(|i| Object::new(i, score(i))).collect();
        next += 5;
        hub.flush().unwrap();
        let (result, allocs) = measured(|| hub.publish(&batch));
        result.unwrap();
        assert_eq!(allocs, 0, "quiet async publish round {round} allocated");
    }
    assert_eq!(
        hub.drain().unwrap().len(),
        0,
        "40 objects into s = 100 complete no slide"
    );
    assert_eq!(
        hub.publisher_parks(),
        parks_after_warm,
        "quiet path never parks"
    );
}

/// An engine slow enough that a capacity-1 queue is always full when the
/// publisher returns — every measured publish goes through the
/// park/wake path.
#[derive(Debug)]
struct Sleepy {
    spec: WindowSpec,
    empty: Vec<Object>,
}

impl CheckpointState for Sleepy {}

impl SlidingTopK for Sleepy {
    fn spec(&self) -> WindowSpec {
        self.spec
    }
    fn slide(&mut self, _batch: &[Object]) -> &[Object] {
        std::thread::sleep(std::time::Duration::from_micros(200));
        &self.empty
    }
    fn candidate_count(&self) -> usize {
        0
    }
    fn memory_bytes(&self) -> usize {
        0
    }
    fn stats(&self) -> OpStats {
        OpStats::default()
    }
    fn name(&self) -> &str {
        "sleepy"
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation bounds are pinned for release builds"
)]
fn async_park_wake_cycle_stays_under_constant_bound() {
    let _guard = LOCK.lock().unwrap();
    // Backpressure parking is a condvar wait plus one relaxed counter
    // tick: the cycle itself must stay O(1) allocations per publish no
    // matter how often the publisher parks. A deliberately slow engine
    // behind a capacity-1 queue forces a park on essentially every
    // measured publish.
    let mut hub = AsyncHub::with_config(1, 1, 1, Box::new(FifoScheduler));
    for _ in 0..4 {
        hub.register_alg(Sleepy {
            spec: WindowSpec::new(4, 1, 4).unwrap(),
            empty: Vec::new(),
        })
        .unwrap();
    }
    let batch: Vec<Object> = (0..4u64).map(|i| Object::new(i, 7.0)).collect();
    for _ in 0..10 {
        hub.publish(&batch).unwrap();
    }
    hub.flush().unwrap();
    hub.drain().unwrap();

    const PUBLISHES: u64 = 50;
    let (result, allocs) = measured(|| {
        for _ in 0..PUBLISHES {
            hub.publish(&batch)?;
        }
        Ok::<(), SapError>(())
    });
    result.unwrap();
    assert!(
        hub.publisher_parks() >= 10,
        "the workload must actually park (got {} parks)",
        hub.publisher_parks()
    );
    assert!(
        allocs <= 4 * PUBLISHES,
        "park/wake cycle: {allocs} allocations across {PUBLISHES} parking \
         publishes (pinned bound: ≤ 4 per publish, independent of parks)"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation bounds are pinned for release builds"
)]
fn predicate_rejected_publish_is_allocation_free() {
    let _guard = LOCK.lock().unwrap();
    // The admission plane's cheapest path: an object that misses every
    // group's predicate only advances the ring and the ordinal clock —
    // no digest ingest, no member work, no heap. After warm-up (ring at
    // capacity, pools filled) a buffering publish whose objects are all
    // rejected must be allocation-free, and a slide completed entirely
    // by rejected objects is a quiet classed close (the previous Arc is
    // re-emitted): the output Vec is the only permitted allocation.
    let mut hub = Hub::new();
    let members = 50usize;
    for q in 0..members as u64 {
        let k = 1 + (q as usize % 3);
        hub.register_grouped(
            &Query::window(200)
                .top(k)
                .slide(10)
                .filter(Predicate::any().score_at_least(500.0)),
        )
        .unwrap();
    }
    let warm: Vec<Object> = (0..1_000u64).map(|i| Object::new(i, score(i))).collect();
    for chunk in warm.chunks(10) {
        hub.publish(chunk);
    }
    let stats = hub.stats();
    assert_eq!(stats.count_groups, 1, "one predicate sub-group");
    assert!(stats.count_group_hits > 0, "warm-up must serve group hits");

    // half a slide of predicate misses: ring append + ordinal advance
    // only — the publish must not touch the heap
    let rejected: Vec<Object> = (1_000..1_005u64).map(|i| Object::new(i, 1.0)).collect();
    let (updates, allocs) = measured(|| hub.publish(&rejected).len());
    assert_eq!(updates, 0);
    assert_eq!(allocs, 0, "predicate-miss publish must be allocation-free");

    // the rest of the slide, still all misses: the close serves every
    // member off the unchanged digest — quiet, so no per-member Arcs
    let rest: Vec<Object> = (1_005..1_010u64).map(|i| Object::new(i, 1.0)).collect();
    let (updates, allocs) = measured(|| hub.publish(&rest));
    assert_eq!(updates.len(), members, "every member rides the close");
    for u in &updates {
        assert!(
            !u.result.changed(),
            "a slide of pure rejections cannot change any top-k"
        );
    }
    assert!(
        allocs <= 1,
        "all-rejected slide close paid {allocs} allocations for {members} \
         members (pinned bound: the output Vec only)"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation bounds are pinned for release builds"
)]
fn dominance_pruned_quiet_path_meets_the_classed_pinned_bounds() {
    let _guard = LOCK.lock().unwrap();
    // The dominance gate's steady state must ride the same ceilings the
    // result-class plane pinned (PR 5): a quiet classed close with most
    // of the slide pruned pays the output Vec and nothing else, and a
    // mid-slide publish of dominated objects is allocation-free — the
    // gate check is a heap peek, and a pruned object skips ingest
    // entirely.
    let mut hub = Hub::new();
    let members = 50usize;
    for _ in 0..members {
        hub.register_grouped(&Query::window(400).top(1).slide(10))
            .unwrap();
    }
    // one spike per window dominates top-1 (quiet closes); within every
    // slide the scores descend, so after the slide's first admission the
    // gate (cap = k_max = 1) prunes the rest
    let shaped = |i: u64| {
        if i.is_multiple_of(400) {
            10_000.0
        } else {
            900.0 - (i % 10) as f64
        }
    };
    let warm: Vec<Object> = (0..1_000u64).map(|i| Object::new(i, shaped(i))).collect();
    for chunk in warm.chunks(10) {
        hub.publish(chunk);
    }
    let warm_stats = hub.stats();
    assert!(
        warm_stats.pruned > 0,
        "descending slides must exercise the gate"
    );
    assert!(
        warm_stats.prune_rate() > 0.5,
        "most of each slide is dominated"
    );

    // mid-slide: the slide's maximum is already admitted, every further
    // object is strictly dominated — pruned without touching the heap
    let mut next = 1_000u64;
    let dominated: Vec<Object> = (next + 1..next + 6)
        .map(|i| Object::new(i, shaped(i)))
        .collect();
    hub.publish(&[Object::new(next, shaped(next))]);
    let before = hub.stats().pruned;
    let (updates, allocs) = measured(|| hub.publish(&dominated).len());
    assert_eq!(updates, 0);
    assert_eq!(
        allocs, 0,
        "pruned mid-slide publish must be allocation-free"
    );
    assert_eq!(hub.stats().pruned, before + 5, "all five were dominated");
    next += 6;

    // quiet closes with pruning live: the classed ceiling holds
    for round in 0..10u64 {
        let batch: Vec<Object> = (next..next + 10)
            .map(|i| Object::new(i, shaped(i)))
            .collect();
        next += 10;
        let (updates, allocs) = measured(|| hub.publish(&batch));
        assert_eq!(updates.len(), members, "every member rides the close");
        for u in &updates {
            assert!(
                !u.result.changed(),
                "round {round}: the spike keeps it quiet"
            );
        }
        assert!(
            allocs <= 1,
            "round {round}: pruned quiet close paid {allocs} allocations \
             (pinned bound: the output Vec only)"
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation bounds are pinned for release builds"
)]
fn checkpoint_leaves_the_warm_publish_path_allocation_free() {
    let _guard = LOCK.lock().unwrap();
    // A checkpoint is a read-only borrow of serving state: taking one on a
    // warm hub must not disturb the pooled scratch or retained hints, so
    // the very next buffering publish is still allocation-free and the
    // next slide-completing publish still meets the steady-state bound.
    let mut hub = Hub::new();
    for q in 0..50u64 {
        let k = 1 + (q as usize % 3);
        hub.register(&Query::window(200).top(k).slide(10)).unwrap();
    }
    let mut warm = Vec::new();
    for i in 0..1_000u64 {
        warm.push(Object::new(i, score(i)));
    }
    for chunk in warm.chunks(10) {
        hub.publish(chunk);
    }

    // checkpointing itself allocates (it builds a byte buffer) — that is
    // off the publish path and unmeasured here; what it must NOT do is
    // drain pools or clear scratch behind the sessions' backs
    let ckpt = hub.checkpoint();
    assert!(
        !ckpt.is_empty(),
        "warm hub produces a non-trivial checkpoint"
    );

    let half: Vec<Object> = (1_000..1_005u64)
        .map(|i| Object::new(i, score(i)))
        .collect();
    let (updates, allocs) = measured(|| hub.publish(&half).len());
    assert_eq!(updates, 0);
    assert_eq!(
        allocs, 0,
        "buffering publish after checkpoint() must stay allocation-free"
    );

    let rest: Vec<Object> = (1_005..1_010u64)
        .map(|i| Object::new(i, score(i)))
        .collect();
    let (updates, allocs) = measured(|| hub.publish(&rest).len());
    assert_eq!(updates, 50, "every session completes");
    assert!(
        allocs <= 1 + updates as u64,
        "slide-completing publish after checkpoint(): {allocs} allocations \
         for {updates} updates (pinned bound: 1 output Vec + ≤ 1 Arc per update)"
    );
}
