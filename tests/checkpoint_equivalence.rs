//! Durability-plane equivalence: a run that is checkpointed at an
//! arbitrary point and restored — through either hub flavor, at any
//! shard count — must emit **checksum-byte-identical** results to the
//! uninterrupted run, for SAP and all four baselines, across count-based,
//! time-based, and shared-digest sessions. The codec must reject foreign
//! bytes (truncated, bit-flipped, version-bumped, payload-corrupted) with
//! a typed error and never panic. And the elastic plane — `move_query` /
//! `resize` churn between publishes — must leave the drained result
//! stream untouched.

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;

use sap::prelude::*;
use sap::stream::checkpoint::fnv1a;

mod common;
use common::fold_all;

/// Tie-heavy stream from a small score alphabet.
fn stream(scores: &[u8]) -> Vec<Object> {
    scores
        .iter()
        .enumerate()
        .map(|(i, s)| Object::new(i as u64, *s as f64))
        .collect()
}

/// Window geometry: s divides n, 1 ≤ k ≤ n.
fn geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=8, 1usize..=6).prop_flat_map(|(m, s)| {
        let n = m * s;
        (Just(n), 1..=n, Just(s))
    })
}

fn all_kinds() -> [AlgorithmKind; 5] {
    [
        AlgorithmKind::sap(),
        AlgorithmKind::Naive,
        AlgorithmKind::KSkyband,
        AlgorithmKind::MinTopK,
        AlgorithmKind::sma(),
    ]
}

/// One count-based query per algorithm kind, shared geometry.
fn count_fleet(n: usize, k: usize, s: usize) -> Vec<Query> {
    all_kinds()
        .into_iter()
        .map(|kind| Query::window(n).top(k).slide(s).algorithm(kind))
        .collect()
}

/// The uninterrupted sequential reference for a count-based fleet.
fn sequential_reference(
    queries: &[Query],
    data: &[Object],
    chunk: usize,
) -> BTreeMap<QueryId, u64> {
    let mut hub = Hub::new();
    for q in queries {
        hub.register(q).expect("valid query");
    }
    let mut sums = BTreeMap::new();
    for c in data.chunks(chunk) {
        fold_all(&mut sums, hub.publish(c));
    }
    sums
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sequential hub: checkpoint at an arbitrary chunk boundary, push the
    /// bytes through the wire format, restore, continue — the folded
    /// result stream equals the uninterrupted run's, and the restored
    /// hub's immediate re-checkpoint is **byte-identical** to the one it
    /// came from (restore loses nothing the format captures).
    #[test]
    fn sequential_checkpoint_restore_is_invisible(
        scores in vec(0u8..16, 1..240),
        (n, k, s) in geometry(),
        chunk in 1usize..20,
        cut_seed in 0usize..100,
    ) {
        let queries = count_fleet(n, k, s);
        let data = stream(&scores);
        let expect = sequential_reference(&queries, &data, chunk);

        let mut hub = Hub::new();
        for q in &queries {
            hub.register(q).expect("valid query");
        }
        let chunks: Vec<&[Object]> = data.chunks(chunk).collect();
        let cut = cut_seed % (chunks.len() + 1);
        let mut sums = BTreeMap::new();
        for c in &chunks[..cut] {
            fold_all(&mut sums, hub.publish(c));
        }
        let ckpt = hub.checkpoint();
        let wire = Checkpoint::from_bytes(ckpt.as_bytes()).expect("own bytes validate");
        let mut hub = Hub::restore(&wire, &DefaultEngineFactory).expect("own checkpoint restores");
        prop_assert_eq!(
            hub.checkpoint().as_bytes(),
            ckpt.as_bytes(),
            "re-checkpoint of a restored hub must be byte-identical"
        );
        for c in &chunks[cut..] {
            fold_all(&mut sums, hub.publish(c));
        }
        prop_assert_eq!(sums, expect, "n={} k={} s={} cut={}", n, k, s, cut);
    }

    /// Sharded hub: checkpoint mid-stream, restore at a *different* shard
    /// count — and also into a sequential hub (the formats are
    /// interchangeable) — and finish the stream; every variant folds to
    /// the uninterrupted reference.
    #[test]
    fn sharded_checkpoint_restores_at_any_shard_count(
        scores in vec(0u8..16, 1..160),
        (n, k, s) in geometry(),
        chunk in 1usize..16,
        cut_seed in 0usize..100,
        before_i in 0usize..3,
        after_i in 0usize..3,
    ) {
        let (before, after) = ([1usize, 2, 8][before_i], [1usize, 2, 8][after_i]);
        let queries = count_fleet(n, k, s);
        let data = stream(&scores);
        let expect = sequential_reference(&queries, &data, chunk);
        let chunks: Vec<&[Object]> = data.chunks(chunk).collect();
        let cut = cut_seed % (chunks.len() + 1);

        let mut hub = ShardedHub::new(before);
        for q in &queries {
            hub.register(q).expect("valid query");
        }
        let mut sums = BTreeMap::new();
        for c in &chunks[..cut] {
            hub.publish(c).expect("healthy shards");
        }
        let (ckpt, drained) = hub.checkpoint().expect("healthy shards");
        fold_all(&mut sums, drained);

        // resume sharded at the new count
        let mut resumed =
            ShardedHub::restore(&ckpt, &DefaultEngineFactory, after).expect("restores");
        let mut sharded_sums = sums.clone();
        for c in &chunks[cut..] {
            resumed.publish(c).expect("healthy shards");
        }
        fold_all(&mut sharded_sums, resumed.drain().expect("healthy shards"));
        prop_assert_eq!(&sharded_sums, &expect, "sharded {}→{} cut={}", before, after, cut);

        // the same bytes also resume on a sequential hub
        let mut seq = Hub::restore(&ckpt, &DefaultEngineFactory).expect("restores");
        let mut seq_sums = sums;
        for c in &chunks[cut..] {
            fold_all(&mut seq_sums, seq.publish(c));
        }
        prop_assert_eq!(&seq_sums, &expect, "sharded {}→sequential cut={}", before, cut);
    }

    /// Async hub: checkpoint mid-stream under a seeded adversarial
    /// schedule, restore onto a fresh `AsyncHub` at a *different*
    /// (shards, workers) shape — and also onto a sequential hub and from
    /// a sharded checkpoint (all three formats are interchangeable) —
    /// and finish the stream; every variant folds to the uninterrupted
    /// reference.
    #[test]
    fn async_checkpoint_restores_across_hub_flavors(
        scores in vec(0u8..16, 1..160),
        (n, k, s) in geometry(),
        chunk in 1usize..16,
        cut_seed in 0usize..100,
        shape_i in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let (shards_after, workers_after) = [(1usize, 1usize), (2, 2), (8, 2), (32, 3)][shape_i];
        let queries = count_fleet(n, k, s);
        let data = stream(&scores);
        let expect = sequential_reference(&queries, &data, chunk);
        let chunks: Vec<&[Object]> = data.chunks(chunk).collect();
        let cut = cut_seed % (chunks.len() + 1);

        let mut hub =
            AsyncHub::with_scheduler(5, 2, Box::new(SeededScheduler::new(seed)));
        for q in &queries {
            hub.register(q).expect("valid query");
        }
        let mut sums = BTreeMap::new();
        for c in &chunks[..cut] {
            hub.publish(c).expect("healthy shards");
        }
        let (ckpt, drained) = hub.checkpoint().expect("healthy shards");
        fold_all(&mut sums, drained);

        // resume on a fresh AsyncHub at the new shape, same seed stream
        let mut resumed =
            AsyncHub::restore(&ckpt, &DefaultEngineFactory, shards_after, workers_after)
                .expect("async checkpoint restores");
        let mut async_sums = sums.clone();
        for c in &chunks[cut..] {
            resumed.publish(c).expect("healthy shards");
        }
        fold_all(&mut async_sums, resumed.drain().expect("healthy shards"));
        prop_assert_eq!(
            &async_sums, &expect,
            "async→async({}x{}) cut={} seed={:#018x}",
            shards_after, workers_after, cut, seed
        );

        // the same bytes also resume on a sequential hub
        let mut seq = Hub::restore(&ckpt, &DefaultEngineFactory).expect("restores");
        let mut seq_sums = sums;
        for c in &chunks[cut..] {
            fold_all(&mut seq_sums, seq.publish(c));
        }
        prop_assert_eq!(&seq_sums, &expect, "async→sequential cut={}", cut);

        // and a *sharded* checkpoint of the same prefix resumes on an
        // AsyncHub (flavor interchange goes both ways)
        let mut sharded = ShardedHub::new(3);
        for q in &queries {
            sharded.register(q).expect("valid query");
        }
        let mut cross_sums = BTreeMap::new();
        for c in &chunks[..cut] {
            sharded.publish(c).expect("healthy shards");
        }
        let (sharded_ckpt, drained) = sharded.checkpoint().expect("healthy shards");
        fold_all(&mut cross_sums, drained);
        let mut crossed =
            AsyncHub::restore(&sharded_ckpt, &DefaultEngineFactory, shards_after, workers_after)
                .expect("sharded checkpoint restores on the async hub");
        for c in &chunks[cut..] {
            crossed.publish(c).expect("healthy shards");
        }
        fold_all(&mut cross_sums, crossed.drain().expect("healthy shards"));
        prop_assert_eq!(&cross_sums, &expect, "sharded→async cut={}", cut);
    }

    /// Elastic churn: `move_query` and `resize` fired between arbitrary
    /// publishes never change what drains — the global `(query, slide)`
    /// stream is placement-blind.
    #[test]
    fn move_and_resize_churn_is_result_invisible(
        scores in vec(0u8..16, 1..160),
        (n, k, s) in geometry(),
        ops in vec((0u8..3, 0usize..64, 0usize..64), 0..12),
    ) {
        let queries = count_fleet(n, k, s);
        let data = stream(&scores);
        let expect = sequential_reference(&queries, &data, 7);

        let mut hub = ShardedHub::new(3);
        let mut ids = Vec::new();
        for q in &queries {
            ids.push(hub.register(q).expect("valid query"));
        }
        let mut sums = BTreeMap::new();
        for (i, c) in data.chunks(7).enumerate() {
            hub.publish(c).expect("healthy shards");
            if let Some((op, a, b)) = ops.get(i).copied() {
                match op {
                    0 => hub
                        .move_query(ids[a % ids.len()], b % hub.num_shards())
                        .expect("live move"),
                    1 => hub.resize(1 + b % 4).expect("live resize"),
                    _ => fold_all(&mut sums, hub.drain().expect("healthy shards")),
                }
            }
        }
        fold_all(&mut sums, hub.drain().expect("healthy shards"));
        prop_assert_eq!(sums, expect);
    }

    /// Codec fuzz on framed bytes: any truncation, any single bit flip,
    /// and any version bump must come back as a typed error — and must
    /// never panic.
    #[test]
    fn foreign_bytes_fail_typed(
        scores in vec(0u8..16, 0..60),
        cut_seed in 0usize..10_000,
        flip_byte in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let mut hub = Hub::new();
        hub.register(&Query::window(8).top(2).slide(4))
            .expect("valid query");
        hub.publish(&stream(&scores));
        let bytes = hub.checkpoint().as_bytes().to_vec();

        // truncation: every proper prefix is rejected
        let cut = cut_seed % bytes.len();
        prop_assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "truncated at {}", cut);

        // bit flip: the trailing checksum (or the magic/version checks
        // ahead of it) catches every single-bit corruption
        let mut bent = bytes.clone();
        bent[flip_byte % bytes.len()] ^= 1 << flip_bit;
        prop_assert!(Checkpoint::from_bytes(&bent).is_err(), "flip at {}", flip_byte % bytes.len());

        // version bump: reported as from-the-future, not as garbage
        let next = sap::stream::checkpoint::FORMAT_VERSION + 1;
        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&next.to_le_bytes());
        let tail = future.len() - 8;
        let sum = fnv1a(&future[..tail]);
        future[tail..].copy_from_slice(&sum.to_le_bytes());
        prop_assert!(matches!(
            Checkpoint::from_bytes(&future),
            Err(CheckpointError::UnsupportedVersion { found, .. }) if found == next
        ));
    }
}

/// Time-based and shared-digest sessions: checkpoint a sharded hub
/// mid-stream (engine blobs and digest groups in flight), restore at
/// another shard count, finish — identical to the uninterrupted
/// sequential run. Deterministic sweep over cuts so slide-boundary and
/// mid-slide checkpoints are both covered.
#[test]
fn timed_and_shared_sessions_survive_checkpoint() {
    let queries: Vec<(Query, bool)> = (0..9)
        .map(|i| {
            let sd = [100u64, 200, 400][i % 3];
            let q = Query::window_duration(sd * (2 + (i / 3) as u64))
                .top(1 + i % 5)
                .slide_duration(sd)
                .algorithm([AlgorithmKind::sap(), AlgorithmKind::MinTopK][i % 2]);
            (q, i % 2 == 0) // alternate shared-plane and isolated adapters
        })
        .collect();
    let data: Vec<TimedObject> = (0..600)
        .map(|i| TimedObject::new(i as u64, 10 * i as u64, ((i * 37) % 101) as f64))
        .collect();
    let horizon = data.last().unwrap().timestamp + 2_000;

    let register = |hub: &mut dyn FnMut(&Query, bool) -> QueryId| -> Vec<QueryId> {
        queries.iter().map(|(q, shared)| hub(q, *shared)).collect()
    };

    // uninterrupted sequential reference
    let mut reference = Hub::new();
    register(&mut |q, shared| {
        if shared {
            reference.register_shared(q).expect("valid query")
        } else {
            reference.register(q).expect("valid query")
        }
    });
    let mut expect = BTreeMap::new();
    for c in data.chunks(37) {
        fold_all(&mut expect, reference.publish_timed(c));
    }
    fold_all(&mut expect, reference.advance_time(horizon));

    for (cut, shards_after) in [(0, 2), (3, 8), (7, 1), (11, 2), (16, 2)] {
        let mut hub = ShardedHub::new(2);
        register(&mut |q, shared| {
            if shared {
                hub.register_shared(q).expect("valid query")
            } else {
                hub.register(q).expect("valid query")
            }
        });
        let chunks: Vec<&[TimedObject]> = data.chunks(37).collect();
        let mut sums = BTreeMap::new();
        for c in &chunks[..cut] {
            hub.publish_timed(c).expect("healthy shards");
        }
        let (ckpt, drained) = hub.checkpoint().expect("healthy shards");
        fold_all(&mut sums, drained);
        let mut hub = ShardedHub::restore(&ckpt, &DefaultEngineFactory, shards_after)
            .expect("timed checkpoint restores");
        for c in &chunks[cut..] {
            hub.publish_timed(c).expect("healthy shards");
        }
        hub.advance_time(horizon).expect("healthy shards");
        fold_all(&mut sums, hub.drain().expect("healthy shards"));
        assert_eq!(sums, expect, "cut={cut} shards_after={shards_after}");
    }
}

/// Shared-digest groups survive `move_query` (which relocates the whole
/// slide group) and `resize` interleaved with timed publishes.
#[test]
fn shared_groups_survive_move_and_resize() {
    let mut reference = Hub::new();
    let mut hub = ShardedHub::new(3);
    let mut ids = Vec::new();
    for i in 0..8usize {
        let sd = [100u64, 200][i % 2];
        let q = Query::window_duration(sd * 3)
            .top(1 + i % 4)
            .slide_duration(sd);
        reference.register_shared(&q).expect("valid query");
        ids.push(hub.register_shared(&q).expect("valid query"));
    }
    let data: Vec<TimedObject> = (0..500)
        .map(|i| TimedObject::new(i as u64, 7 * i as u64, ((i * 53) % 89) as f64))
        .collect();
    let horizon = data.last().unwrap().timestamp + 1_000;

    let mut expect = BTreeMap::new();
    let mut sums = BTreeMap::new();
    for (i, c) in data.chunks(41).enumerate() {
        fold_all(&mut expect, reference.publish_timed(c));
        hub.publish_timed(c).expect("healthy shards");
        match i % 4 {
            0 => hub
                .move_query(ids[i % ids.len()], i % hub.num_shards())
                .expect("group move"),
            1 => hub.resize(1 + i % 4).expect("live resize"),
            _ => {}
        }
    }
    fold_all(&mut expect, reference.advance_time(horizon));
    hub.advance_time(horizon).expect("healthy shards");
    fold_all(&mut sums, hub.drain().expect("healthy shards"));
    assert_eq!(sums, expect);
}

/// Payload corruption behind a *valid* frame (magic, version, and
/// checksum all recomputed): `Hub::restore` must return a typed error or
/// a coherent hub — never panic. Exhaustive over every payload byte.
#[test]
fn corrupt_payloads_never_panic() {
    let mut hub = Hub::new();
    hub.register(&Query::window(6).top(2).slide(3))
        .expect("valid query");
    hub.register_shared(&Query::window_duration(200).top(2).slide_duration(100))
        .expect("valid query");
    hub.publish(&stream(&[3, 1, 4, 1, 5, 9, 2, 6]));
    let bytes = hub.checkpoint().as_bytes().to_vec();

    for pos in 12..bytes.len() - 8 {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut bent = bytes.clone();
            bent[pos] ^= mask;
            let tail = bent.len() - 8;
            let sum = fnv1a(&bent[..tail]);
            bent[tail..].copy_from_slice(&sum.to_le_bytes());
            let ckpt = Checkpoint::from_bytes(&bent).expect("frame recomputed to be valid");
            // Ok (benign mutation, e.g. a score bit) and Err (structural
            // damage) are both acceptable; panicking is not.
            let _ = Hub::restore(&ckpt, &DefaultEngineFactory);
        }
    }
}

/// The async recovery story end to end: a checkpoint taken *before* an
/// engine panic kills a shard restores the full fleet onto a fresh
/// `AsyncHub`, which finishes the stream byte-identical to the
/// uninterrupted sequential reference — the dead hub's typed
/// `ShardDown` errors cost nothing durable.
#[test]
fn async_checkpoint_taken_before_a_kill_restores_cleanly() {
    struct Bomb(WindowSpec);
    impl CheckpointState for Bomb {}
    impl SlidingTopK for Bomb {
        fn spec(&self) -> WindowSpec {
            self.0
        }
        fn slide(&mut self, _batch: &[Object]) -> &[Object] {
            panic!("engine bug")
        }
        fn candidate_count(&self) -> usize {
            0
        }
        fn memory_bytes(&self) -> usize {
            0
        }
        fn stats(&self) -> OpStats {
            OpStats::default()
        }
        fn name(&self) -> &str {
            "bomb"
        }
    }

    let queries = count_fleet(8, 2, 4);
    let data = stream(&[7, 2, 9, 4, 1, 8, 3, 6, 5, 9, 2, 7, 4, 8, 1, 3]);
    let expect = sequential_reference(&queries, &data, 4);
    let chunks: Vec<&[Object]> = data.chunks(4).collect();
    let cut = chunks.len() / 2;

    let mut hub = AsyncHub::new(4, 2);
    for q in &queries {
        hub.register(q).expect("valid query");
    }
    let mut sums = BTreeMap::new();
    for c in &chunks[..cut] {
        hub.publish(c).expect("healthy shards");
    }
    // the cut: durable state captured while every shard is healthy
    let (ckpt, drained) = hub.checkpoint().expect("healthy shards");
    fold_all(&mut sums, drained);

    // now the production incident: a poisoned engine joins and detonates
    hub.register_boxed(Box::new(Bomb(WindowSpec::new(4, 1, 2).unwrap())))
        .expect("registration is healthy");
    hub.publish(chunks[cut])
        .expect("death is observed at the barrier");
    assert!(matches!(hub.drain(), Err(SapError::ShardDown { .. })));
    drop(hub);

    // recovery: the pre-kill checkpoint restores the full fleet onto a
    // fresh reactor (different shape), which finishes the stream
    let mut recovered =
        AsyncHub::restore(&ckpt, &DefaultEngineFactory, 8, 3).expect("pre-kill bytes restore");
    for c in &chunks[cut..] {
        recovered.publish(c).expect("healthy shards");
    }
    fold_all(&mut sums, recovered.drain().expect("healthy shards"));
    assert_eq!(
        sums, expect,
        "recovered run must equal the uninterrupted reference"
    );
}

/// Unknown engine names surface as the typed
/// [`CheckpointError::UnknownEngine`], so a checkpoint from a build with
/// a custom engine fails loud and clear rather than mis-restoring.
#[test]
fn unknown_engine_is_a_typed_error() {
    struct Custom(Box<dyn SlidingTopK>);
    impl CheckpointState for Custom {}
    impl SlidingTopK for Custom {
        fn spec(&self) -> WindowSpec {
            self.0.spec()
        }
        fn slide(&mut self, batch: &[Object]) -> &[Object] {
            self.0.slide(batch)
        }
        fn candidate_count(&self) -> usize {
            self.0.candidate_count()
        }
        fn memory_bytes(&self) -> usize {
            self.0.memory_bytes()
        }
        fn stats(&self) -> OpStats {
            self.0.stats()
        }
        fn name(&self) -> &str {
            "bespoke"
        }
    }

    let mut hub = Hub::new();
    let q = Query::window(8).top(2).slide(4);
    hub.register_alg(Custom(q.build().expect("valid query")));
    let ckpt = hub.checkpoint();
    match Hub::restore(&ckpt, &DefaultEngineFactory) {
        Err(SapError::Checkpoint(CheckpointError::UnknownEngine(name))) => {
            assert_eq!(name, "bespoke")
        }
        other => panic!("expected UnknownEngine, got {other:?}"),
    }
}
