//! Shared digest plane equivalence: a time-based query served by the
//! shared plane (`HubExt::register_shared`) must produce the **same
//! results** as every isolated surface — the raw `TimeBased` adapter, an
//! isolated `TimedSession`, the sequential `Hub`'s isolated timed path —
//! and as a brute-force time-window oracle; and the `ShardedHub`'s
//! shard-local slide groups must reproduce the sequential shared hub
//! checksum-for-checksum at 1, 2, and 8 shards. Streams are jittered
//! (bursts, quiet stretches, empty slides), schedules include mid-stream
//! register/unregister where a late joiner **grows the group's `k_max`**,
//! and a regression test pins the slide-boundary tie-break (newer id
//! wins) through the shared path.

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;

use sap::prelude::*;

mod common;
use common::fold_all;

/// Builds a timed stream from (gap, score) pairs: timestamps accumulate
/// the gaps (gap 0 = same-instant burst; large gaps = empty slides).
fn timed_stream(raw: &[(u8, u8)]) -> Vec<TimedObject> {
    let mut ts = 0u64;
    raw.iter()
        .enumerate()
        .map(|(i, &(gap, score))| {
            ts += gap as u64;
            TimedObject::try_new(i as u64, ts, score as f64).expect("finite")
        })
        .collect()
}

/// Brute-force time-window oracle: top-k of the objects with
/// `timestamp ∈ [window_end − duration, window_end)`, ties to the higher
/// id, as untimed result objects.
fn oracle(all: &[TimedObject], window_end: u64, duration: u64, k: usize) -> Vec<Object> {
    let lo = window_end.saturating_sub(duration);
    let mut alive: Vec<TimedObject> = all
        .iter()
        .filter(|o| o.timestamp >= lo && o.timestamp < window_end)
        .copied()
        .collect();
    alive.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(b.id.cmp(&a.id)));
    alive.truncate(k);
    alive.iter().map(TimedObject::untimed).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance anchor: one query on the shared plane — inside a
    /// group whose digests are *deeper* than its own `k`, so the prefix
    /// slicing is really exercised — agrees with the brute-force oracle,
    /// the raw adapter, and an isolated `TimedSession`, snapshot for
    /// snapshot.
    #[test]
    fn shared_query_matches_oracle_adapter_and_isolated_session(
        raw in vec((0u8..=12, 0u8..24), 40..160),
        m in 1u64..=6,
        sd in 1u64..=25,
        k in 1usize..=5,
        extra_k in 0usize..=4,
        algo_idx in 0usize..3,
    ) {
        let wd = sd * m;
        let data = timed_stream(&raw);
        let horizon = data.last().unwrap().timestamp + wd + sd;
        let kinds = [
            AlgorithmKind::sap(),
            AlgorithmKind::MinTopK,
            AlgorithmKind::KSkyband,
        ];
        let query = Query::window_duration(wd)
            .top(k)
            .slide_duration(sd)
            .algorithm(kinds[algo_idx]);
        // a deeper sibling in the same slide group: the group's k_max
        // becomes k + extra_k, so `query` consumes digest prefixes
        let deep = Query::window_duration(sd * (m + 1))
            .top(k + extra_k)
            .slide_duration(sd)
            .algorithm(kinds[(algo_idx + 1) % 3]);

        // ground truth: the raw adapter, itself oracle-checked
        let mut direct = query.build_timed().unwrap();
        let mut expected: Vec<Vec<Object>> = Vec::new();
        for &o in &data {
            for snap in direct.ingest(o) {
                expected.push(snap.iter().map(TimedObject::untimed).collect());
            }
        }
        for snap in direct.advance_to(horizon) {
            expected.push(snap.iter().map(TimedObject::untimed).collect());
        }
        prop_assert!(!expected.is_empty());
        for (i, snap) in expected.iter().enumerate() {
            let window_end = sd * (i as u64 + 1);
            prop_assert_eq!(
                snap,
                &oracle(&data, window_end, wd, k),
                "adapter vs oracle at window ending {} (wd={}, sd={}, k={})",
                window_end, wd, sd, k
            );
        }

        // an isolated TimedSession over the same stream
        let mut session = query.timed_session().unwrap();
        let mut isolated: Vec<Snapshot> = Vec::new();
        for chunk in data.chunks(7) {
            isolated.extend(session.push_timed(chunk).into_iter().map(|r| r.snapshot));
        }
        isolated.extend(session.advance_watermark(horizon).into_iter().map(|r| r.snapshot));
        prop_assert_eq!(&isolated, &expected, "TimedSession diverged");

        // the shared plane, deep sibling registered first
        let mut hub = Hub::new();
        hub.register_shared(&deep).unwrap();
        let qid = hub.register_shared(&query).unwrap();
        let mut got: Vec<Snapshot> = Vec::new();
        for chunk in data.chunks(11) {
            got.extend(
                hub.publish_timed(chunk)
                    .into_iter()
                    .filter(|u| u.query == qid)
                    .map(|u| u.result.snapshot),
            );
        }
        got.extend(
            hub.advance_time(horizon)
                .into_iter()
                .filter(|u| u.query == qid)
                .map(|u| u.result.snapshot),
        );
        prop_assert_eq!(&got, &expected, "shared plane diverged");
        let stats = hub.stats();
        prop_assert_eq!(stats.shared_queries, 2);
        prop_assert_eq!(stats.digest_groups, 1);
        prop_assert!(stats.digest_hits > 0);
    }
}

/// The scripted schedule every surface replays: register `early` queries,
/// publish half the stream in ragged chunks, unregister one query and
/// register the rest (mid-group joins, possibly growing `k_max`), publish
/// the remainder, then raise a final watermark. Returns per-query event
/// checksums.
struct Schedule<'a> {
    queries: &'a [Query],
    early: usize,
    data: &'a [TimedObject],
    cuts: &'a [usize],
}

impl Schedule<'_> {
    fn chunks(&self, lo: usize, hi: usize) -> Vec<&[TimedObject]> {
        let mut out = Vec::new();
        let mut offset = lo;
        let mut turn = 0usize;
        while offset < hi {
            let take = if self.cuts.is_empty() {
                1
            } else {
                self.cuts[turn % self.cuts.len()]
            }
            .min(hi - offset);
            turn += 1;
            out.push(&self.data[offset..offset + take]);
            offset += take;
        }
        out
    }

    fn horizon(&self) -> u64 {
        self.data.last().map_or(0, |o| o.timestamp) + 500
    }

    /// Sequential hub; `shared` picks the registration path.
    fn run_hub(&self, shared: bool) -> (BTreeMap<QueryId, u64>, Option<QueryId>) {
        let mut hub = Hub::new();
        let register = |hub: &mut Hub, q: &Query| {
            if shared {
                hub.register_shared(q).unwrap()
            } else {
                hub.register(q).unwrap()
            }
        };
        let mut sums = BTreeMap::new();
        for q in &self.queries[..self.early] {
            register(&mut hub, q);
        }
        let mid = self.data.len() / 2;
        for chunk in self.chunks(0, mid) {
            let updates = hub.publish_timed(chunk);
            fold_all(&mut sums, updates);
        }
        let ids: Vec<QueryId> = hub.query_ids().collect();
        let dropped = (ids.len() > 1).then(|| ids[0]);
        if let Some(id) = dropped {
            hub.unregister(id).expect("registered in phase one");
        }
        for q in &self.queries[self.early..] {
            register(&mut hub, q);
        }
        for chunk in self.chunks(mid, self.data.len()) {
            let updates = hub.publish_timed(chunk);
            fold_all(&mut sums, updates);
        }
        let updates = hub.advance_time(self.horizon());
        fold_all(&mut sums, updates);
        (sums, dropped)
    }

    /// Sharded hub, all queries on the shared plane (shard-local groups).
    fn run_sharded(&self, shards: usize) -> (BTreeMap<QueryId, u64>, Option<QueryId>) {
        let mut hub = ShardedHub::new(shards);
        let mut sums = BTreeMap::new();
        for q in &self.queries[..self.early] {
            hub.register_shared(q).unwrap();
        }
        let mid = self.data.len() / 2;
        for chunk in self.chunks(0, mid) {
            hub.publish_timed(chunk).unwrap();
            fold_all(&mut sums, hub.drain().unwrap());
        }
        let ids: Vec<QueryId> = hub.query_ids().collect();
        let dropped = (ids.len() > 1).then(|| ids[0]);
        if let Some(id) = dropped {
            hub.unregister(id).expect("registered in phase one");
        }
        for q in &self.queries[self.early..] {
            hub.register_shared(q).unwrap();
        }
        for chunk in self.chunks(mid, self.data.len()) {
            hub.publish_timed(chunk).unwrap();
            fold_all(&mut sums, hub.drain().unwrap());
        }
        hub.advance_time(self.horizon()).unwrap();
        fold_all(&mut sums, hub.drain().unwrap());
        (sums, dropped)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The churn property: the same schedule — mid-stream unregister, and
    /// mid-stream joins that land inside live groups (warm-up) and can
    /// grow a group's `k_max` — replayed on the isolated sequential hub,
    /// the shared sequential hub, and the shared sharded hub at 1/2/8
    /// shards, must produce identical per-query event checksums.
    #[test]
    fn shared_hubs_stay_byte_identical_with_mid_stream_churn(
        raw in vec((0u8..=9, 0u8..24), 40..180),
        geoms in vec((0usize..2, 1usize..=5, 1usize..=6, 0usize..3), 3..8),
        sd_base in 1u64..=12,
        cuts in vec(1usize..=29, 0..8),
        early_frac in 1usize..=100,
    ) {
        let data = timed_stream(&raw);
        let kinds = [
            AlgorithmKind::sap(),
            AlgorithmKind::MinTopK,
            AlgorithmKind::KSkyband,
        ];
        // only two distinct slide durations across all queries: late
        // joiners land inside live groups, and differing k per group
        // exercises k_max growth on join
        let sds = [sd_base, sd_base * 3];
        let queries: Vec<Query> = geoms
            .iter()
            .map(|&(sd_idx, m, k, kind_idx)| {
                let sd = sds[sd_idx];
                Query::window_duration(sd * m as u64)
                    .top(k)
                    .slide_duration(sd)
                    .algorithm(kinds[kind_idx])
            })
            .collect();
        let schedule = Schedule {
            early: (early_frac * queries.len()).div_ceil(100).min(queries.len()),
            queries: &queries,
            data: &data,
            cuts: &cuts,
        };

        let (expected, iso_dropped) = schedule.run_hub(false);
        prop_assert!(!expected.is_empty());
        let (shared, shared_dropped) = schedule.run_hub(true);
        prop_assert_eq!(shared_dropped, iso_dropped);
        prop_assert_eq!(
            &shared, &expected,
            "shared sequential hub diverged from isolated (queries={}, early={})",
            queries.len(), schedule.early
        );
        for shards in [1usize, 2, 8] {
            let (got, par_dropped) = schedule.run_sharded(shards);
            prop_assert_eq!(par_dropped, iso_dropped, "unregister targets diverged");
            prop_assert_eq!(
                &got, &expected,
                "shared sharded hub diverged at {} shards (queries={}, early={})",
                shards, queries.len(), schedule.early
            );
        }
    }
}

/// Regression: the slide-boundary tie-break (equal scores → the newer,
/// higher-id object survives the truncation) must hold through the
/// shared path, including when the query's `k` is smaller than the
/// group's digest depth.
#[test]
fn boundary_tie_break_keeps_the_newer_object_through_the_shared_path() {
    let mut hub = Hub::new();
    // deep sibling first: the group's digests keep 3 objects, the
    // narrow query slices its top-1 prefix
    let deep = hub
        .register_shared(&Query::window_duration(10).top(3).slide_duration(10))
        .unwrap();
    let narrow = hub
        .register_shared(&Query::window_duration(10).top(1).slide_duration(10))
        .unwrap();
    hub.publish_timed(&[TimedObject::new(1, 0, 5.0), TimedObject::new(2, 0, 5.0)]);
    let updates = hub.advance_time(10);
    let of = |q: QueryId| {
        updates
            .iter()
            .find(|u| u.query == q)
            .expect("one slide each")
            .result
            .snapshot
            .clone()
    };
    assert_eq!(
        of(narrow),
        vec![Object::new(2, 5.0)],
        "the newer object must survive the top-1 truncation"
    );
    assert_eq!(of(deep), vec![Object::new(2, 5.0), Object::new(1, 5.0)]);

    // cross-slide ties resolve by slide recency, not raw id, shared path
    // included: the later slide's object (smaller id) ranks first
    let mut hub = Hub::new();
    let q = hub
        .register_shared(&Query::window_duration(20).top(2).slide_duration(10))
        .unwrap();
    hub.publish_timed(&[TimedObject::new(10, 0, 5.0), TimedObject::new(3, 12, 5.0)]);
    let updates = hub.advance_time(20);
    let last = updates.iter().rfind(|u| u.query == q).unwrap();
    assert_eq!(
        last.result.snapshot,
        vec![Object::new(3, 5.0), Object::new(10, 5.0)]
    );
}

/// Pinned non-property case on a generated Poisson stream, large enough
/// that windows expire, empty slides occur, every algorithm leaves
/// warm-up, and a late joiner grows its group's `k_max` mid-stream.
#[test]
fn shared_hubs_agree_on_poisson_stock_stream() {
    let data = Dataset::Stock.generate_timed(4_000, 42, ArrivalProcess::poisson(6.0));
    let queries: Vec<Query> = (0..12)
        .map(|i| {
            let kind = [
                AlgorithmKind::sap(),
                AlgorithmKind::MinTopK,
                AlgorithmKind::KSkyband,
            ][i % 3];
            // three slide durations straddling the 6-unit mean gap; the
            // last (late-registered) queries carry the largest k of their
            // groups, forcing k_max growth on join
            let sd = [4u64, 30, 150][i % 3];
            Query::window_duration(sd * (1 + i as u64 % 4))
                .top(1 + i)
                .slide_duration(sd)
                .algorithm(kind)
        })
        .collect();
    let cuts = [317usize, 89, 411];
    let schedule = Schedule {
        early: 7,
        queries: &queries,
        data: &data,
        cuts: &cuts,
    };
    let (expected, _) = schedule.run_hub(false);
    assert!(!expected.is_empty());
    let (shared, _) = schedule.run_hub(true);
    assert_eq!(shared, expected, "shared sequential diverged");
    for shards in [1usize, 2, 8] {
        let (got, _) = schedule.run_sharded(shards);
        assert_eq!(got, expected, "diverged at {shards} shards");
    }
}
