//! Admission-control equivalence: ingest-side dominance pruning and
//! predicate-filtered subscriptions must be **result-invisible**. The
//! pruning arm (knob on, the default), the reference arm (knob off),
//! and a brute-force oracle that ranks the predicate-matching slice of
//! the window must agree — for SAP and all four baselines, on the
//! count plane (`register_grouped`) and the timed plane
//! (`register_shared`), through mid-stream register/unregister churn
//! and `move_query`, on the `ShardedHub` at 1/2/8 shards and the
//! seeded `AsyncHub`. The pruned counter itself is pinned by an
//! independent re-simulation of the k-skyband gate, and a checkpoint
//! cut through a **warm** pruning group must restore at a different
//! shard count and continue byte-identically.

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;

use sap::prelude::*;

mod common;
use common::fold_all;

fn stream(scores: &[u8]) -> Vec<Object> {
    scores
        .iter()
        .enumerate()
        .map(|(i, &score)| Object::new(1_000 + i as u64, score as f64))
        .collect()
}

/// Timed stream from (gap, score) pairs: timestamps accumulate the
/// gaps, so slides range from packed to empty.
fn timed_stream(raw: &[(u8, u8)]) -> Vec<TimedObject> {
    let mut ts = 0u64;
    raw.iter()
        .enumerate()
        .map(|(i, &(gap, score))| {
            ts += gap as u64;
            TimedObject::try_new(i as u64, ts, score as f64).expect("finite")
        })
        .collect()
}

fn all_kinds() -> [AlgorithmKind; 5] {
    [
        AlgorithmKind::sap(),
        AlgorithmKind::Naive,
        AlgorithmKind::KSkyband,
        AlgorithmKind::MinTopK,
        AlgorithmKind::sma(),
    ]
}

/// Brute-force count-window oracle with a predicate: the window is the
/// last `n` arrivals (predicates filter the *ranking*, not the stream),
/// the ranking is the top-k of the matching slice, ties to the higher
/// id.
fn oracle(seen: &[Object], n: usize, k: usize, predicate: Predicate) -> Vec<Object> {
    let lo = seen.len().saturating_sub(n);
    let mut alive: Vec<Object> = seen[lo..]
        .iter()
        .filter(|o| predicate.accepts(o))
        .copied()
        .collect();
    alive.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(b.id.cmp(&a.id)));
    alive.truncate(k);
    alive
}

/// The scripted churn schedule: register `early` queries, publish half
/// the stream in ragged chunks, unregister one query and register the
/// rest, publish the remainder. Identical to the fan-out suite's
/// schedule, except every hub runs with the admission knob in a chosen
/// position and queries may carry predicates.
struct Schedule<'a> {
    queries: &'a [Query],
    early: usize,
    count_data: &'a [Object],
    timed_data: &'a [TimedObject],
    cuts: &'a [usize],
}

impl Schedule<'_> {
    fn bounds(&self) -> (usize, usize) {
        let len = if self.timed_data.is_empty() {
            self.count_data.len()
        } else {
            self.timed_data.len()
        };
        (len / 2, len)
    }

    fn chunk_sizes(&self, lo: usize, hi: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut offset = lo;
        let mut turn = 0usize;
        while offset < hi {
            let take = if self.cuts.is_empty() {
                1
            } else {
                self.cuts[turn % self.cuts.len()]
            }
            .min(hi - offset);
            turn += 1;
            out.push((offset, offset + take));
            offset += take;
        }
        out
    }

    /// Sequential hub with the knob in the given position; `timed`
    /// picks the plane (`register_shared`+`publish_timed` vs
    /// `register_grouped`+`publish`).
    fn run_hub(&self, pruning: bool, timed: bool) -> (BTreeMap<QueryId, u64>, HubStats) {
        let mut hub = Hub::new();
        hub.set_admission_pruning(pruning);
        let register = |hub: &mut Hub, q: &Query| {
            if timed {
                hub.register_shared(q).unwrap();
            } else {
                hub.register_grouped(q).unwrap();
            }
        };
        let mut sums = BTreeMap::new();
        for q in &self.queries[..self.early] {
            register(&mut hub, q);
        }
        let (mid, len) = self.bounds();
        for (lo, hi) in self.chunk_sizes(0, mid) {
            let updates = if timed {
                hub.publish_timed(&self.timed_data[lo..hi])
            } else {
                hub.publish(&self.count_data[lo..hi])
            };
            fold_all(&mut sums, updates);
        }
        let ids: Vec<QueryId> = hub.query_ids().collect();
        if ids.len() > 1 {
            hub.unregister(ids[0]).expect("registered in phase one");
        }
        for q in &self.queries[self.early..] {
            register(&mut hub, q);
        }
        for (lo, hi) in self.chunk_sizes(mid, len) {
            let updates = if timed {
                hub.publish_timed(&self.timed_data[lo..hi])
            } else {
                hub.publish(&self.count_data[lo..hi])
            };
            fold_all(&mut sums, updates);
        }
        (sums, hub.stats())
    }

    /// Sharded hub, same schedule, knob broadcast to every shard.
    fn run_sharded(
        &self,
        shards: usize,
        pruning: bool,
        timed: bool,
    ) -> (BTreeMap<QueryId, u64>, HubStats) {
        let mut hub = ShardedHub::new(shards);
        hub.set_admission_pruning(pruning).unwrap();
        let mut sums = BTreeMap::new();
        for q in &self.queries[..self.early] {
            if timed {
                hub.register_shared(q).unwrap();
            } else {
                hub.register_grouped(q).unwrap();
            }
        }
        let (mid, len) = self.bounds();
        for (lo, hi) in self.chunk_sizes(0, mid) {
            if timed {
                hub.publish_timed(&self.timed_data[lo..hi]).unwrap();
            } else {
                hub.publish(&self.count_data[lo..hi]).unwrap();
            }
            fold_all(&mut sums, hub.drain().unwrap());
        }
        let ids: Vec<QueryId> = hub.query_ids().collect();
        if ids.len() > 1 {
            hub.unregister(ids[0]).expect("registered in phase one");
        }
        for q in &self.queries[self.early..] {
            if timed {
                hub.register_shared(q).unwrap();
            } else {
                hub.register_grouped(q).unwrap();
            }
        }
        for (lo, hi) in self.chunk_sizes(mid, len) {
            if timed {
                hub.publish_timed(&self.timed_data[lo..hi]).unwrap();
            } else {
                hub.publish(&self.count_data[lo..hi]).unwrap();
            }
            fold_all(&mut sums, hub.drain().unwrap());
        }
        let stats = hub.stats().unwrap();
        (sums, stats)
    }

    /// Async hub under a seeded adversarial schedule.
    fn run_async(
        &self,
        shards: usize,
        workers: usize,
        seed: u64,
        pruning: bool,
        timed: bool,
    ) -> (BTreeMap<QueryId, u64>, HubStats) {
        let mut hub =
            AsyncHub::with_scheduler(shards, workers, Box::new(SeededScheduler::new(seed)));
        hub.set_admission_pruning(pruning).unwrap();
        let mut sums = BTreeMap::new();
        for q in &self.queries[..self.early] {
            if timed {
                hub.register_shared(q).unwrap();
            } else {
                hub.register_grouped(q).unwrap();
            }
        }
        let (mid, len) = self.bounds();
        for (lo, hi) in self.chunk_sizes(0, mid) {
            if timed {
                hub.publish_timed(&self.timed_data[lo..hi]).unwrap();
            } else {
                hub.publish(&self.count_data[lo..hi]).unwrap();
            }
            fold_all(&mut sums, hub.drain().unwrap());
        }
        let ids: Vec<QueryId> = hub.query_ids().collect();
        if ids.len() > 1 {
            hub.unregister(ids[0]).expect("registered in phase one");
        }
        for q in &self.queries[self.early..] {
            if timed {
                hub.register_shared(q).unwrap();
            } else {
                hub.register_grouped(q).unwrap();
            }
        }
        for (lo, hi) in self.chunk_sizes(mid, len) {
            if timed {
                hub.publish_timed(&self.timed_data[lo..hi]).unwrap();
            } else {
                hub.publish(&self.count_data[lo..hi]).unwrap();
            }
            fold_all(&mut sums, hub.drain().unwrap());
        }
        hub.flush().expect("shards alive");
        fold_all(&mut sums, hub.drain().expect("shards alive"));
        let stats = hub.stats().expect("shards alive");
        (sums, stats)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The oracle anchor: a predicate-filtered grouped query — sharing
    /// its geometry class with a pass-all sibling, so the
    /// predicate-disjoint sub-group split is really exercised — agrees
    /// with the brute-force predicate-aware oracle snapshot for
    /// snapshot, with pruning on *and* off, for every algorithm.
    #[test]
    fn filtered_grouped_query_matches_brute_force_oracle(
        scores in vec(0u8..=50, 40..140),
        m in 1usize..=5,
        s in 1usize..=7,
        k in 1usize..=6,
        threshold in 0u8..=40,
        kind_idx in 0usize..5,
        pruning_arm in 0u8..2,
    ) {
        let pruning = pruning_arm == 1;
        let n = s * m;
        let k = k.min(n);
        let data = stream(&scores);
        let kinds = all_kinds();
        let predicate = Predicate::any().score_at_least(threshold as f64);
        let query = Query::window(n)
            .top(k)
            .slide(s)
            .algorithm(kinds[kind_idx])
            .filter(predicate);
        // a pass-all sibling in the same geometry class: the class must
        // split into predicate-disjoint sub-groups, and the sibling's
        // stream must stay unfiltered
        let sibling = Query::window(n)
            .top(k)
            .slide(s)
            .algorithm(kinds[(kind_idx + 1) % 5]);

        let mut hub = Hub::new();
        hub.set_admission_pruning(pruning);
        let sib = hub.register_grouped(&sibling).unwrap();
        let qid = hub.register_grouped(&query).unwrap();
        let mut got: Vec<Snapshot> = Vec::new();
        let mut got_sib: Vec<Snapshot> = Vec::new();
        for chunk in data.chunks(11) {
            for u in hub.publish(chunk) {
                if u.query == qid {
                    got.push(u.result.snapshot);
                } else if u.query == sib {
                    got_sib.push(u.result.snapshot);
                }
            }
        }
        let expected: Vec<Vec<Object>> = (1..=data.len() / s)
            .map(|j| oracle(&data[..j * s], n, k, predicate))
            .collect();
        let expected_sib: Vec<Vec<Object>> = (1..=data.len() / s)
            .map(|j| oracle(&data[..j * s], n, k, Predicate::any()))
            .collect();
        prop_assert_eq!(&got, &expected, "filtered member diverged from oracle");
        prop_assert_eq!(&got_sib, &expected_sib, "pass-all sibling diverged from oracle");
        let stats = hub.stats();
        prop_assert_eq!(
            stats.count_groups, 2,
            "one geometry class, two predicate-disjoint sub-groups"
        );
        if !pruning {
            prop_assert_eq!(stats.pruned, 0, "knob off is the reference arm");
        }
        if !expected.is_empty() {
            prop_assert!(stats.admitted > 0);
        }
    }

    /// The count-plane churn property: the same schedule — mid-stream
    /// unregister, late registrations founding or joining sub-groups,
    /// mixed predicates — replayed with pruning on and off, on the
    /// sequential hub, the sharded hub at 1/2/8 shards, and the seeded
    /// async hub, must produce identical per-query event checksums.
    /// The pruned counter is deterministic, so every pruning arm
    /// reports the same count.
    #[test]
    fn pruning_is_result_invisible_under_count_plane_churn(
        scores in vec(0u8..=50, 50..200),
        geoms in vec((1usize..=4, 1usize..=6, 0usize..5, 0u8..3), 3..8),
        s_base in 1usize..=6,
        cuts in vec(1usize..=23, 0..6),
        early_frac in 1usize..=100,
        seed in 0u64..u64::MAX,
    ) {
        let data = stream(&scores);
        let kinds = all_kinds();
        let queries: Vec<Query> = geoms
            .iter()
            .map(|&(m, k, kind_idx, pred_idx)| {
                let predicate = match pred_idx {
                    0 => Predicate::any(),
                    1 => Predicate::any().score_at_least(20.0),
                    _ => Predicate::any().score_at_most(35.0),
                };
                Query::window(s_base * m)
                    .top(k.min(s_base * m))
                    .slide(s_base)
                    .algorithm(kinds[kind_idx])
                    .filter(predicate)
            })
            .collect();
        let schedule = Schedule {
            early: (early_frac * queries.len()).div_ceil(100).min(queries.len()),
            queries: &queries,
            count_data: &data,
            timed_data: &[],
            cuts: &cuts,
        };

        let (expected, off_stats) = schedule.run_hub(false, false);
        prop_assert!(!expected.is_empty());
        prop_assert_eq!(off_stats.pruned, 0, "knob off never prunes");
        let (on, on_stats) = schedule.run_hub(true, false);
        prop_assert_eq!(&on, &expected, "pruning arm diverged from reference");
        prop_assert_eq!(
            on_stats.admitted + on_stats.pruned, off_stats.admitted,
            "pruning only reroutes admissions, it never changes their total"
        );
        for shards in [1usize, 2, 8] {
            let (got, par_stats) = schedule.run_sharded(shards, true, false);
            prop_assert_eq!(
                &got, &expected,
                "sharded pruning arm diverged at {} shards", shards
            );
            prop_assert_eq!(
                par_stats.pruned, on_stats.pruned,
                "the gate is deterministic: same stream, same prunes"
            );
        }
        let (got, async_stats) = schedule.run_async(2, 2, seed, true, false);
        prop_assert_eq!(&got, &expected, "async pruning arm diverged (seed={:#018x})", seed);
        prop_assert_eq!(async_stats.pruned, on_stats.pruned);
    }

    /// The timed-plane churn property: the same invariants on the
    /// shared digest plane — slide groups keyed by (slide duration,
    /// predicate), variable-rate streams with empty and packed slides.
    #[test]
    fn pruning_is_result_invisible_under_timed_plane_churn(
        raw in vec((0u8..=12, 0u8..=50), 50..160),
        geoms in vec((1u64..=4, 1usize..=6, 0usize..5, 0u8..3), 3..7),
        sd_base in 1u64..=6,
        cuts in vec(1usize..=23, 0..6),
        early_frac in 1usize..=100,
        seed in 0u64..u64::MAX,
    ) {
        let data = timed_stream(&raw);
        let kinds = all_kinds();
        let queries: Vec<Query> = geoms
            .iter()
            .map(|&(m, k, kind_idx, pred_idx)| {
                let predicate = match pred_idx {
                    0 => Predicate::any(),
                    1 => Predicate::any().score_at_least(20.0),
                    _ => Predicate::any().score_at_most(35.0),
                };
                Query::window_duration(sd_base * m)
                    .top(k)
                    .slide_duration(sd_base)
                    .algorithm(kinds[kind_idx])
                    .filter(predicate)
            })
            .collect();
        let schedule = Schedule {
            early: (early_frac * queries.len()).div_ceil(100).min(queries.len()),
            queries: &queries,
            count_data: &[],
            timed_data: &data,
            cuts: &cuts,
        };

        let (expected, off_stats) = schedule.run_hub(false, true);
        prop_assert_eq!(off_stats.pruned, 0, "knob off never prunes");
        let (on, on_stats) = schedule.run_hub(true, true);
        prop_assert_eq!(&on, &expected, "timed pruning arm diverged from reference");
        prop_assert_eq!(on_stats.admitted + on_stats.pruned, off_stats.admitted);
        for shards in [1usize, 2, 8] {
            let (got, par_stats) = schedule.run_sharded(shards, true, true);
            prop_assert_eq!(
                &got, &expected,
                "sharded timed pruning arm diverged at {} shards", shards
            );
            prop_assert_eq!(par_stats.pruned, on_stats.pruned);
        }
        let (got, _) = schedule.run_async(2, 2, seed, true, true);
        prop_assert_eq!(&got, &expected, "async timed pruning arm diverged (seed={:#018x})", seed);
    }
}

/// Pins the pruned counter itself, not just result invisibility: an
/// independent re-simulation of the k-skyband gate — a min-heap of the
/// top-`k_max` scores among objects admitted to the open slide, prune
/// iff the heap is full and the score is strictly below its root —
/// must predict `HubStats::pruned` and `HubStats::admitted` exactly.
#[test]
fn pruned_counter_matches_an_independent_gate_resimulation() {
    let s = 8usize;
    let data = stream(
        &(0..400)
            .map(|i| ((i * 53 + 11) % 47) as u8)
            .collect::<Vec<_>>(),
    );
    let mut hub = Hub::new();
    // one geometry class, two pass-all members: k_max = 3
    hub.register_grouped(&Query::window(24).top(2).slide(s))
        .unwrap();
    hub.register_grouped(&Query::window(16).top(3).slide(s))
        .unwrap();
    let mut sums = BTreeMap::new();
    for chunk in data.chunks(13) {
        fold_all(&mut sums, hub.publish(chunk));
    }

    // the independent oracle: replay the stream through a from-scratch
    // min-heap gate with cap = k_max = 3, reset on each slide close
    let k_max = 3usize;
    let (mut admitted, mut pruned) = (0u64, 0u64);
    let mut heap: Vec<f64> = Vec::new();
    for (i, o) in data.iter().enumerate() {
        let min = heap.iter().copied().fold(f64::INFINITY, f64::min);
        if heap.len() < k_max || o.score >= min {
            admitted += 1;
            if heap.len() < k_max {
                heap.push(o.score);
            } else if o.score > min {
                let pos = heap.iter().position(|&x| x == min).unwrap();
                heap[pos] = o.score;
            }
        } else {
            pruned += 1;
        }
        if (i + 1) % s == 0 {
            heap.clear();
        }
    }
    let stats = hub.stats();
    assert_eq!(
        stats.admitted, admitted,
        "admitted counter diverged from gate oracle"
    );
    assert_eq!(
        stats.pruned, pruned,
        "pruned counter diverged from gate oracle"
    );
    assert!(
        stats.pruned > 0,
        "this stream must actually exercise the gate"
    );
    let rate = stats.prune_rate();
    assert!((rate - pruned as f64 / (admitted + pruned) as f64).abs() < 1e-12);

    // the reference arm on the same stream: zero prunes, same results
    let mut off = Hub::new();
    off.set_admission_pruning(false);
    off.register_grouped(&Query::window(24).top(2).slide(s))
        .unwrap();
    off.register_grouped(&Query::window(16).top(3).slide(s))
        .unwrap();
    let mut off_sums = BTreeMap::new();
    for chunk in data.chunks(13) {
        fold_all(&mut off_sums, off.publish(chunk));
    }
    assert_eq!(off.stats().pruned, 0);
    assert_eq!(off.stats().admitted, admitted + pruned);
    assert_eq!(
        sums.values().copied().collect::<Vec<_>>(),
        off_sums.values().copied().collect::<Vec<_>>(),
        "arms must be checksum-identical (ids differ, order does not)"
    );
}

/// A checkpoint cut through a **warm** pruning group — open slide
/// partially filled, the gate holding admitted scores, predicates and
/// admission counters live — must restore into the sequential hub and
/// the sharded hub at a *different* shard count, continue
/// byte-identically, and carry the admission counters (FORMAT v3).
#[test]
fn checkpoint_cuts_through_a_warm_pruning_group() {
    let kinds = all_kinds();
    let data = stream(
        &(0..400)
            .map(|i| ((i * 7 + 3) % 51) as u8)
            .collect::<Vec<_>>(),
    );
    let mut hub = ShardedHub::new(2);
    for (i, kind) in kinds.iter().enumerate() {
        hub.register_grouped(
            &Query::window(30)
                .top(1 + i)
                .slide(10)
                .algorithm(*kind)
                .filter(Predicate::any().score_at_least(10.0)),
        )
        .unwrap();
        hub.register_grouped(&Query::window(12).top(1 + i % 3).slide(6).algorithm(*kind))
            .unwrap();
    }
    // 157 % 10 ≠ 0 and 157 % 6 ≠ 0: both sub-groups are warm at the cut
    let mut sums = BTreeMap::new();
    hub.publish(&data[..157]).unwrap();
    fold_all(&mut sums, hub.drain().unwrap());
    let (cp, residue) = hub.checkpoint().unwrap();
    fold_all(&mut sums, residue);
    let stats_at_cut = hub.stats().unwrap();
    assert_eq!(
        stats_at_cut.count_groups, 2,
        "predicate-disjoint members split one geometry class"
    );
    assert!(
        stats_at_cut.pruned > 0,
        "the cut must pass through a warm gate"
    );

    let mut expected_tail = BTreeMap::new();
    hub.publish(&data[157..]).unwrap();
    fold_all(&mut expected_tail, hub.drain().unwrap());
    assert!(!expected_tail.is_empty());

    // restore at a different shard count and into the sequential hub
    let mut expected_stats = stats_at_cut;
    expected_stats.class_hits = 0;
    for shards in [1usize, 5] {
        let mut par = ShardedHub::restore(&cp, &DefaultEngineFactory, shards).unwrap();
        let restored = par.stats().unwrap();
        assert_eq!(
            restored, expected_stats,
            "admission counters travel (shards={shards})"
        );
        let mut par_tail = BTreeMap::new();
        for chunk in data[157..].chunks(31) {
            par.publish(chunk).unwrap();
            fold_all(&mut par_tail, par.drain().unwrap());
        }
        assert_eq!(
            par_tail, expected_tail,
            "restore diverged at {shards} shards"
        );
    }
    let mut seq = Hub::restore(&cp, &DefaultEngineFactory).unwrap();
    assert_eq!(seq.stats(), expected_stats);
    let mut seq_tail = BTreeMap::new();
    fold_all(&mut seq_tail, seq.publish(&data[157..]));
    assert_eq!(seq_tail, expected_tail, "sequential restore diverged");
}

/// Whole-group migration with live predicates and a warm gate: moving
/// one filtered member relocates its sub-group, and results are
/// placement-blind.
#[test]
fn move_query_relocates_a_filtered_pruning_group() {
    let data = stream(
        &(0..240)
            .map(|i| ((i * 11 + 5) % 37) as u8)
            .collect::<Vec<_>>(),
    );
    let predicate = Predicate::any().score_at_least(8.0);
    let mut reference = Hub::new();
    let mut hub = ShardedHub::new(4);
    let mut ids = Vec::new();
    for k in 1..=4usize {
        let q = Query::window(16).top(k).slide(8).filter(predicate);
        reference.register_grouped(&q).unwrap();
        ids.push(hub.register_grouped(&q).unwrap());
    }
    let mut expected = BTreeMap::new();
    let mut got = BTreeMap::new();
    fold_all(&mut expected, reference.publish(&data[..100]));
    hub.publish(&data[..100]).unwrap();
    fold_all(&mut got, hub.drain().unwrap());
    // bounce the sub-group between shards mid-slide (100 % 8 ≠ 0)
    for target in [2usize, 0, 3] {
        hub.move_query(ids[1], target).unwrap();
    }
    fold_all(&mut expected, reference.publish(&data[100..]));
    hub.publish(&data[100..]).unwrap();
    fold_all(&mut got, hub.drain().unwrap());
    assert_eq!(got, expected, "results must be placement-blind");
    let stats = hub.stats().unwrap();
    assert_eq!(stats.count_groups, 1, "one sub-group, moved wholesale");
    assert_eq!(
        stats.pruned,
        reference.stats().pruned,
        "the gate moved with it"
    );
    assert!(stats.pruned > 0);
}
