//! The time-based window adapter (Appendix A) against a time-based oracle
//! under bursty, irregular arrival rates.

use sap::core::{TimeBasedSap, TimedObject};

fn oracle(all: &[TimedObject], window_end: u64, duration: u64, k: usize) -> Vec<TimedObject> {
    let lo = window_end.saturating_sub(duration);
    let mut alive: Vec<TimedObject> = all
        .iter()
        .filter(|o| o.timestamp >= lo && o.timestamp < window_end)
        .copied()
        .collect();
    alive.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(b.id.cmp(&a.id)));
    alive.truncate(k);
    alive
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn bursty_stream(len_time: u64, seed: u64) -> Vec<TimedObject> {
    let mut rng = Lcg(seed);
    let mut out = Vec::new();
    let mut id = 0u64;
    for t in 0..len_time {
        // burst pattern: quiet stretches, steady periods, and spikes
        let rate = match (t / 37) % 4 {
            0 => 0,
            1 => 1,
            2 => 3,
            _ => (rng.next() % 9) as usize,
        };
        for _ in 0..rate {
            out.push(TimedObject {
                id,
                timestamp: t,
                score: (rng.next() % 100_000) as f64 / 10.0,
            });
            id += 1;
        }
    }
    out
}

#[test]
fn matches_oracle_over_long_bursty_stream() {
    for (duration, slide, k, seed) in [
        (200u64, 20u64, 5usize, 1u64),
        (120, 10, 3, 2),
        (90, 30, 8, 3),
    ] {
        let all = bursty_stream(2_000, seed);
        let mut q = TimeBasedSap::new(duration, slide, k).unwrap();
        let mut boundary = slide;
        for &o in &all {
            for res in q.ingest(o) {
                let expect = oracle(&all, boundary, duration, k);
                assert_eq!(
                    res, expect,
                    "window ending {boundary} (dur={duration}, slide={slide}, k={k})"
                );
                boundary += slide;
            }
        }
    }
}

#[test]
fn handles_total_silence() {
    let mut q = TimeBasedSap::new(100, 10, 4).unwrap();
    // a single object, then a huge time jump
    q.ingest(TimedObject {
        id: 0,
        timestamp: 0,
        score: 1.0,
    });
    let results = q.ingest(TimedObject {
        id: 1,
        timestamp: 1000,
        score: 2.0,
    });
    assert_eq!(results.len(), 100);
    // after expiry, intermediate windows are empty
    assert!(results[50].is_empty());
    let last = q.close_slide();
    assert_eq!(last.len(), 1);
    assert_eq!(last[0].id, 1);
}

#[test]
fn candidate_count_stays_bounded() {
    let all = bursty_stream(5_000, 9);
    let mut q = TimeBasedSap::new(500, 50, 10).unwrap();
    let mut peak = 0usize;
    for &o in &all {
        q.ingest(o);
        peak = peak.max(q.candidate_count());
    }
    // Appendix A bound: candidates ≤ O(k·√(slides)) + per-slide buffers;
    // with 10 slides per window and k = 10 anything near the raw window
    // (thousands) would be a regression.
    assert!(peak < 600, "peak candidates {peak}");
}
