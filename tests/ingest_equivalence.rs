//! Ingestion re-chunking equivalence: delivering a stream through
//! arbitrary-size `push()` calls must be indistinguishable from the
//! paper's exact-`s` `slide()` protocol — byte-identical snapshots and
//! driver checksums — for SAP and every baseline. Also checks the delta
//! events against a model: replaying each slide's events over the
//! previous snapshot must reproduce the next snapshot's membership.

use proptest::collection::vec;
use proptest::prelude::*;

use sap::prelude::*;
use sap::stream::{checksum_fold, CHECKSUM_SEED};

/// Tie-heavy stream from a small score alphabet.
fn stream(scores: Vec<u8>) -> Vec<Object> {
    scores
        .into_iter()
        .enumerate()
        .map(|(i, s)| Object::try_new(i as u64, s as f64).expect("finite"))
        .collect()
}

/// Window geometry: s divides n, 1 ≤ k ≤ n.
fn geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=12, 1usize..=8).prop_flat_map(|(m, s)| {
        let n = m * s;
        (Just(n), 1..=n, Just(s))
    })
}

fn all_kinds() -> [AlgorithmKind; 5] {
    [
        AlgorithmKind::sap(),
        AlgorithmKind::Naive,
        AlgorithmKind::KSkyband,
        AlgorithmKind::MinTopK,
        AlgorithmKind::sma(),
    ]
}

/// Splits `data` into chunks whose sizes cycle through `cuts` (falling
/// back to single objects when `cuts` is empty) and pushes each through
/// the session, folding the driver checksum over every emitted snapshot.
fn push_chunked(
    session: &mut Session<Box<dyn SlidingTopK>>,
    data: &[Object],
    cuts: &[usize],
) -> (u64, Vec<Snapshot>) {
    let mut checksum = CHECKSUM_SEED;
    let mut snapshots = Vec::new();
    let mut offset = 0usize;
    let mut turn = 0usize;
    while offset < data.len() {
        let take = if cuts.is_empty() {
            1
        } else {
            cuts[turn % cuts.len()]
        }
        .min(data.len() - offset);
        turn += 1;
        for result in session.push(&data[offset..offset + take]) {
            checksum = checksum_fold(checksum, &result.snapshot);
            snapshots.push(result.snapshot);
        }
        offset += take;
    }
    (checksum, snapshots)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property: arbitrary chunking through `push()`
    /// matches exact-`s` `slide()` checksums for SAP and all four
    /// baselines.
    #[test]
    fn push_matches_slide_for_every_algorithm(
        scores in vec(0u8..16, 0..300),
        (n, k, s) in geometry(),
        cuts in vec(1usize..=23, 0..12),
    ) {
        let data = stream(scores);
        for kind in all_kinds() {
            let query = Query::window(n).top(k).slide(s).algorithm(kind);

            // reference: the instrumented driver feeding exact slides
            let mut reference = query.build().unwrap();
            let summary = run(reference.as_mut(), &data);

            // subject: the same stream in ragged chunks through a session
            let mut session = query.session().unwrap();
            let (checksum, snapshots) = push_chunked(&mut session, &data, &cuts);

            prop_assert_eq!(
                checksum, summary.checksum,
                "{} diverged under re-chunking (n={}, k={}, s={}, cuts={:?})",
                kind.label(), n, k, s, cuts
            );
            prop_assert_eq!(snapshots.len(), summary.slides);
            // both paths strand the same tail
            prop_assert_eq!(session.pending(), summary.leftover);
            prop_assert_eq!(session.pending(), data.len() % s);
        }
    }

    /// Replaying each slide's delta events over the previous snapshot
    /// reproduces the next snapshot, and `Unchanged` appears exactly when
    /// the snapshot is identical to the previous one.
    #[test]
    fn events_replay_to_snapshots(
        scores in vec(0u8..8, 0..250),
        (n, k, s) in geometry(),
    ) {
        let data = stream(scores);
        let query = Query::window(n).top(k).slide(s);
        let mut session = query.session().unwrap();
        let mut prev = Snapshot::empty();
        for result in session.push(&data) {
            if !result.changed() {
                prop_assert_eq!(&result.snapshot, &prev, "Unchanged must mean identical");
                // the Arc snapshot contract: an unchanged slide re-emits
                // the previous allocation itself, not a copy of it
                prop_assert!(
                    result.snapshot.ptr_eq(&prev),
                    "quiet slide must share the previous Arc"
                );
            } else {
                let mut replay: Vec<Object> = prev.to_vec();
                for gone in result.exited() {
                    let pos = replay.iter().position(|o| o.id == gone.id);
                    prop_assert!(pos.is_some(), "Exited object {:?} absent from prev", gone);
                    replay.remove(pos.unwrap());
                }
                for new in result.entered() {
                    prop_assert!(
                        !replay.iter().any(|o| o.id == new.id),
                        "Entered object {:?} already present", new
                    );
                    replay.push(*new);
                }
                replay.sort_unstable_by_key(|o| std::cmp::Reverse(o.key()));
                prop_assert_eq!(&replay, &result.snapshot, "event replay diverged");
            }
            prev = result.snapshot;
        }
    }

    /// Hub fan-out serves heterogeneous concurrent queries exactly as the
    /// same queries run in isolation.
    #[test]
    fn hub_matches_isolated_sessions(
        scores in vec(0u8..32, 50..250),
        geoms in vec(geometry(), 1..6),
        cuts in vec(1usize..=31, 0..8),
    ) {
        let data = stream(scores);
        let mut hub = Hub::new();
        let kinds = all_kinds();
        let mut expected = Vec::new();
        let mut ids = Vec::new();
        for (i, (n, k, s)) in geoms.iter().copied().enumerate() {
            let query = Query::window(n).top(k).slide(s).algorithm(kinds[i % kinds.len()]);
            ids.push(hub.register(&query).unwrap());
            let mut session = query.session().unwrap();
            let (checksum, _) = push_chunked(&mut session, &data, &cuts);
            expected.push(checksum);
        }

        // publish the same ragged chunks to the hub
        let mut checksums = vec![CHECKSUM_SEED; ids.len()];
        let mut offset = 0usize;
        let mut turn = 0usize;
        while offset < data.len() {
            let take = if cuts.is_empty() { 1 } else { cuts[turn % cuts.len()] }
                .min(data.len() - offset);
            turn += 1;
            for update in hub.publish(&data[offset..offset + take]) {
                let slot = ids.iter().position(|id| *id == update.query).unwrap();
                checksums[slot] = checksum_fold(checksums[slot], &update.result.snapshot);
            }
            offset += take;
        }
        prop_assert_eq!(checksums, expected, "hub fan-out diverged from isolated sessions");
    }
}

/// SAP's `dirty` machinery backs the O(1) `Unchanged` path: on a stream
/// where one high-scoring burst per window carries the whole top-k, the
/// slides that only shuffle low scorers are provably quiet — the engine
/// reports `last_slide_changed() == false` and the session emits
/// `[Unchanged]` without diffing.
#[test]
fn sap_quiet_slides_report_unchanged_cheaply() {
    let query = Query::window(100).top(5).slide(10);
    let mut session = query.session().unwrap();
    // every 10th slide delivers a burst of distinct high scores; the
    // other nine slides carry low churn that never reaches the top-5
    let data: Vec<Object> = (0..1000u64)
        .map(|i| {
            let score = if (i / 10) % 10 == 0 {
                1000.0 + (i % 10) as f64
            } else {
                (i % 7) as f64
            };
            Object::new(i, score)
        })
        .collect();
    let results = session.push(&data);
    assert_eq!(results.len(), 100);
    let quiet = results.iter().filter(|r| !r.changed()).count();
    assert!(
        quiet >= 40,
        "burst stream should be mostly quiet, saw {quiet}/100 quiet slides"
    );
    for r in &results {
        if !r.changed() {
            assert_eq!(r.events, vec![TopKEvent::Unchanged]);
        }
    }
    // an empty push completes no slides
    assert!(session.push(&[]).is_empty());
    // the quiet flag is a guarantee, never a guess: replay must confirm
    let mut prev = Snapshot::empty();
    let mut fresh = query.session().unwrap();
    for r in fresh.push(&data) {
        if !r.changed() {
            assert_eq!(
                r.snapshot, prev,
                "slide {} claimed Unchanged wrongly",
                r.slide
            );
            assert!(
                r.snapshot.ptr_eq(&prev),
                "slide {}: the O(1) quiet path must re-emit the previous Arc",
                r.slide
            );
        }
        prev = r.snapshot;
    }
}
