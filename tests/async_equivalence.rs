//! Async-hub schedule fuzzing: an `AsyncHub` must produce
//! **checksum-identical `TopKEvent` streams** to the sequential `Hub`
//! under *every* worker-interleaving the pluggable scheduler can
//! produce. Each proptest case draws a fresh `u64` and replays the
//! adversarial pick order it names through [`SeededScheduler`] at 1, 2,
//! and 8 workers — hundreds of distinct seeded schedules per property —
//! with queries registering, unregistering, moving, and resizing
//! mid-stream across all four planes (count, timed, shared, grouped).
//! Any failure reprints its seed as a one-line repro.
//!
//! The fault-injection half proves the panic containment contract: an
//! engine panic inside a worker costs exactly one shard — every fallible
//! op against it reports the typed `SapError::ShardDown` (never a hang,
//! never a poisoned queue), the worker thread survives, and the other
//! shards keep serving.

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;

use sap::prelude::*;

mod common;
use common::fold_all;

/// One-line repro string for a failing schedule: paste the seed into
/// `SeededScheduler::new` (or re-run the property filtering on it) to
/// replay the exact pick order.
fn repro(seed: u64, shards: usize, workers: usize) -> String {
    format!(
        "repro: async_equivalence scheduler_seed={seed:#018x} shards={shards} workers={workers}"
    )
}

/// Tie-heavy stream from a small score alphabet.
fn stream(scores: &[u8]) -> Vec<Object> {
    scores
        .iter()
        .enumerate()
        .map(|(i, s)| Object::try_new(i as u64, *s as f64).expect("finite"))
        .collect()
}

/// The same stream with non-decreasing timestamps derived from per-object
/// gaps, for the mixed-model property.
fn timed_stream(scores: &[u8], gaps: &[u8]) -> Vec<TimedObject> {
    let mut now = 0u64;
    scores
        .iter()
        .enumerate()
        .map(|(i, s)| {
            now += u64::from(gaps[i % gaps.len().max(1)] % 7);
            TimedObject::new(i as u64, now, f64::from(*s))
        })
        .collect()
}

/// Window geometry: s divides n, 1 ≤ k ≤ n.
fn geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=8, 1usize..=6).prop_flat_map(|(m, s)| {
        let n = m * s;
        (Just(n), 1..=n, Just(s))
    })
}

fn all_kinds() -> [AlgorithmKind; 5] {
    [
        AlgorithmKind::sap(),
        AlgorithmKind::Naive,
        AlgorithmKind::KSkyband,
        AlgorithmKind::MinTopK,
        AlgorithmKind::sma(),
    ]
}

/// Ragged chunking of `data[lo..hi]` from the drawn cut lengths.
fn chunks<'a, T>(data: &'a [T], cuts: &[usize], lo: usize, hi: usize) -> Vec<&'a [T]> {
    let mut out = Vec::new();
    let mut offset = lo;
    let mut turn = 0usize;
    while offset < hi {
        let take = if cuts.is_empty() {
            1
        } else {
            cuts[turn % cuts.len()]
        }
        .min(hi - offset);
        turn += 1;
        out.push(&data[offset..offset + take]);
        offset += take;
    }
    out
}

// ---------------------------------------------------------------------
// Property 1: count-based mixes under seeded schedules, with mid-stream
// register/unregister churn.
// ---------------------------------------------------------------------

fn count_reference(
    queries: &[Query],
    early: usize,
    data: &[Object],
    cuts: &[usize],
) -> (BTreeMap<QueryId, u64>, Option<QueryId>) {
    let mut hub = Hub::new();
    let mut sums = BTreeMap::new();
    for q in &queries[..early] {
        hub.register(q).unwrap();
    }
    let mid = data.len() / 2;
    for chunk in chunks(data, cuts, 0, mid) {
        fold_all(&mut sums, hub.publish(chunk));
    }
    let ids: Vec<QueryId> = hub.query_ids().collect();
    let dropped = (ids.len() > 1).then(|| ids[0]);
    if let Some(id) = dropped {
        hub.unregister(id).expect("registered in phase one");
    }
    for q in &queries[early..] {
        hub.register(q).unwrap();
    }
    for chunk in chunks(data, cuts, mid, data.len()) {
        fold_all(&mut sums, hub.publish(chunk));
    }
    (sums, dropped)
}

fn count_async(
    queries: &[Query],
    early: usize,
    data: &[Object],
    cuts: &[usize],
    shards: usize,
    workers: usize,
    seed: u64,
) -> (BTreeMap<QueryId, u64>, Option<QueryId>) {
    let mut hub = AsyncHub::with_scheduler(shards, workers, Box::new(SeededScheduler::new(seed)));
    let mut sums = BTreeMap::new();
    for q in &queries[..early] {
        hub.register(q).unwrap();
    }
    let mid = data.len() / 2;
    for chunk in chunks(data, cuts, 0, mid) {
        hub.publish(chunk).expect("shards alive");
        fold_all(&mut sums, hub.drain().expect("shards alive"));
    }
    let ids: Vec<QueryId> = hub.query_ids().collect();
    let dropped = (ids.len() > 1).then(|| ids[0]);
    if let Some(id) = dropped {
        hub.unregister(id).expect("registered in phase one");
    }
    for q in &queries[early..] {
        hub.register(q).unwrap();
    }
    for chunk in chunks(data, cuts, mid, data.len()) {
        hub.publish(chunk).expect("shards alive");
        fold_all(&mut sums, hub.drain().expect("shards alive"));
    }
    hub.flush().expect("shards alive");
    fold_all(&mut sums, hub.drain().expect("shards alive"));
    (sums, dropped)
}

// ---------------------------------------------------------------------
// Property 2: all four planes (count / timed / shared / grouped) on a
// timestamped stream, with move_query and resize churn on the async
// side — operations that must be *result-invisible*.
// ---------------------------------------------------------------------

/// Registers the mixed-plane query set: count and grouped from the drawn
/// count geometries, isolated-timed and shared-timed from the timed
/// geometries. Returns the handles in registration order.
fn register_mixed<H: HubExt>(
    hub: &mut H,
    count_geoms: &[(usize, usize, usize)],
    timed_geoms: &[(usize, usize, usize)],
) -> Vec<QueryId> {
    let mut ids = Vec::new();
    for (i, &(n, k, s)) in count_geoms.iter().enumerate() {
        let q = Query::window(n).top(k).slide(s);
        ids.push(if i % 2 == 0 {
            hub.register(&q).unwrap()
        } else {
            hub.register_grouped(&q).unwrap()
        });
    }
    for (i, &(n, k, s)) in timed_geoms.iter().enumerate() {
        let q = Query::window_duration(n as u64 * 5)
            .top(k)
            .slide_duration(s as u64 * 5);
        ids.push(if i % 2 == 0 {
            hub.register(&q).unwrap()
        } else {
            hub.register_shared(&q).unwrap()
        });
    }
    ids
}

fn mixed_reference(
    count_geoms: &[(usize, usize, usize)],
    timed_geoms: &[(usize, usize, usize)],
    data: &[TimedObject],
    cuts: &[usize],
    horizon: u64,
) -> BTreeMap<QueryId, u64> {
    let mut hub = Hub::new();
    let mut sums = BTreeMap::new();
    let half = count_geoms.len() / 2;
    let mut ids = register_mixed(&mut hub, &count_geoms[..half], timed_geoms);
    let mid = data.len() / 2;
    for chunk in chunks(data, cuts, 0, mid) {
        fold_all(&mut sums, hub.publish_timed(chunk));
    }
    if ids.len() > 1 {
        hub.unregister(ids.remove(0)).expect("registered early");
    }
    register_mixed(&mut hub, &count_geoms[half..], &[]);
    for chunk in chunks(data, cuts, mid, data.len()) {
        fold_all(&mut sums, hub.publish_timed(chunk));
    }
    fold_all(&mut sums, hub.advance_time(horizon));
    sums
}

#[allow(clippy::too_many_arguments)]
fn mixed_async(
    count_geoms: &[(usize, usize, usize)],
    timed_geoms: &[(usize, usize, usize)],
    data: &[TimedObject],
    cuts: &[usize],
    horizon: u64,
    shards: usize,
    workers: usize,
    seed: u64,
) -> BTreeMap<QueryId, u64> {
    let mut hub = AsyncHub::with_scheduler(shards, workers, Box::new(SeededScheduler::new(seed)));
    let mut sums = BTreeMap::new();
    let half = count_geoms.len() / 2;
    let mut ids = register_mixed(&mut hub, &count_geoms[..half], timed_geoms);
    let mid = data.len() / 2;
    for chunk in chunks(data, cuts, 0, mid) {
        hub.publish_timed(chunk).expect("shards alive");
        fold_all(&mut sums, hub.drain().expect("shards alive"));
    }
    // elastic churn, all result-invisible: relocate the newest session
    // (a shared/grouped id relocates its whole group), then re-partition
    // everything onto a schedule-derived shard count
    if let Some(&last) = ids.last() {
        hub.move_query(last, seed as usize % hub.num_shards())
            .expect("shards alive");
    }
    hub.resize(1 + (seed >> 32) as usize % 8)
        .expect("shards alive");
    if ids.len() > 1 {
        hub.unregister(ids.remove(0)).expect("registered early");
    }
    register_mixed(&mut hub, &count_geoms[half..], &[]);
    for chunk in chunks(data, cuts, mid, data.len()) {
        hub.publish_timed(chunk).expect("shards alive");
        fold_all(&mut sums, hub.drain().expect("shards alive"));
    }
    hub.advance_time(horizon).expect("shards alive");
    fold_all(&mut sums, hub.drain().expect("shards alive"));
    sums
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Count-based churn: every seeded schedule at 1, 2, and 8 workers
    /// drains byte-identical to the sequential hub — SAP and all four
    /// baselines, mid-stream register and unregister included.
    #[test]
    fn seeded_schedules_match_sequential_count_streams(
        scores in vec(0u8..24, 40..140),
        geoms in vec(geometry(), 2..6),
        cuts in vec(1usize..=29, 0..6),
        early_frac in 1usize..=100,
        shards in 1usize..=12,
        seed in 0u64..u64::MAX,
    ) {
        let data = stream(&scores);
        let kinds = all_kinds();
        let queries: Vec<Query> = geoms
            .iter()
            .enumerate()
            .map(|(i, &(n, k, s))| {
                Query::window(n).top(k).slide(s).algorithm(kinds[i % kinds.len()])
            })
            .collect();
        let early = (early_frac * queries.len()).div_ceil(100).min(queries.len());
        let (expected, seq_dropped) = count_reference(&queries, early, &data, &cuts);
        for workers in [1usize, 2, 8] {
            let (got, dropped) =
                count_async(&queries, early, &data, &cuts, shards, workers, seed);
            prop_assert_eq!(dropped, seq_dropped, "{}", repro(seed, shards, workers));
            prop_assert_eq!(&got, &expected, "{}", repro(seed, shards, workers));
        }
    }

    /// Mixed-plane churn: count, grouped, isolated-timed, and
    /// shared-timed queries on one timestamped stream, with mid-stream
    /// unregister plus async-side move_query and resize — all invisible
    /// in the drained event streams under every seeded schedule.
    #[test]
    fn seeded_schedules_match_sequential_mixed_planes(
        scores in vec(0u8..24, 40..120),
        gaps in vec(0u8..=255, 1..8),
        count_geoms in vec(geometry(), 2..5),
        timed_geoms in vec(geometry(), 1..4),
        cuts in vec(1usize..=23, 0..5),
        shards in 1usize..=12,
        seed in 0u64..u64::MAX,
    ) {
        let data = timed_stream(&scores, &gaps);
        let horizon = data.last().map_or(0, |o| o.timestamp) + 1_000;
        let expected = mixed_reference(&count_geoms, &timed_geoms, &data, &cuts, horizon);
        for workers in [1usize, 2, 8] {
            let got = mixed_async(
                &count_geoms, &timed_geoms, &data, &cuts, horizon, shards, workers, seed,
            );
            prop_assert_eq!(&got, &expected, "{}", repro(seed, shards, workers));
        }
    }
}

/// Pinned non-property case: a real generated stream, large enough that
/// every algorithm leaves warm-up and expires objects, across several
/// (shards, workers) shapes including shards ≫ workers.
#[test]
fn async_hub_matches_sequential_on_stock_stream() {
    let data = Dataset::Stock.generate(4_000, 42);
    let kinds = all_kinds();
    let queries: Vec<Query> = (0..12)
        .map(|i| {
            let s = [10usize, 20, 50][i % 3];
            let n = s * [4usize, 8, 10][i % 3];
            Query::window(n)
                .top(1 + 3 * (i % 4))
                .slide(s)
                .algorithm(kinds[i % kinds.len()])
        })
        .collect();
    let cuts = [317usize, 89, 411];
    let (expected, _) = count_reference(&queries, 7, &data, &cuts);
    assert!(!expected.is_empty());
    for (shards, workers) in [(1usize, 1usize), (8, 2), (32, 3), (4, 8)] {
        let (got, _) = count_async(&queries, 7, &data, &cuts, shards, workers, 0xFEED_F00D);
        assert_eq!(
            got, expected,
            "diverged at {shards} shards / {workers} workers"
        );
    }
}

// ---------------------------------------------------------------------
// Fault injection: engine panics inside reactor workers.
// ---------------------------------------------------------------------

/// An engine that panics on its first slide — the async-worker poison
/// pill.
#[derive(Debug)]
struct Bomb {
    spec: WindowSpec,
}

impl Bomb {
    fn new() -> Bomb {
        Bomb {
            spec: WindowSpec::new(4, 1, 2).expect("valid"),
        }
    }
}

impl CheckpointState for Bomb {}

impl SlidingTopK for Bomb {
    fn spec(&self) -> WindowSpec {
        self.spec
    }
    fn slide(&mut self, _batch: &[Object]) -> &[Object] {
        panic!("engine bug")
    }
    fn candidate_count(&self) -> usize {
        0
    }
    fn memory_bytes(&self) -> usize {
        0
    }
    fn stats(&self) -> OpStats {
        OpStats::default()
    }
    fn name(&self) -> &str {
        "bomb"
    }
}

/// Builds a hub with healthy queries on every shard plus one bomb,
/// detonates it, and returns (hub, bomb id, a healthy id on a different
/// shard than the bomb's).
fn detonated(shards: usize, workers: usize) -> (AsyncHub, QueryId, QueryId) {
    let mut hub = AsyncHub::new(shards, workers);
    let healthy: Vec<QueryId> = (0..shards * 2)
        .map(|_| {
            hub.register(&Query::window(4).top(1).slide(2))
                .expect("fresh hub")
        })
        .collect();
    let bomb = hub
        .register_boxed(Box::new(Bomb::new()))
        .expect("fresh hub");
    // enough objects to close a slide everywhere, detonating the bomb
    let batch: Vec<Object> = (0..4).map(|i| Object::new(i, i as f64)).collect();
    hub.publish(&batch)
        .expect("death is observed later, not here");
    let err = hub.drain().expect_err("the bomb's shard died mid-drain");
    let SapError::ShardDown { shard } = err else {
        panic!("expected ShardDown, got {err:?}");
    };
    let survivor = *healthy
        .iter()
        .find(|id| {
            // an id the hub still serves: inspect answers instead of erroring
            hub.inspect(**id).is_ok()
        })
        .expect("some query lives on a surviving shard");
    assert!(shard < shards);
    (hub, bomb, survivor)
}

/// Every fallible op against a killed shard reports the typed error —
/// and none of them hang, which is the real contract (a lost reply
/// sender would deadlock the hub thread forever).
#[test]
fn worker_panic_surfaces_shard_down_on_every_fallible_op() {
    let (mut hub, bomb, survivor) = detonated(4, 2);
    let batch: Vec<Object> = (0..4).map(|i| Object::new(i, i as f64)).collect();
    assert!(matches!(
        hub.publish(&batch),
        Err(SapError::ShardDown { .. })
    ));
    assert!(matches!(hub.drain(), Err(SapError::ShardDown { .. })));
    assert!(matches!(hub.flush(), Err(SapError::ShardDown { .. })));
    assert!(matches!(hub.stats(), Err(SapError::ShardDown { .. })));
    assert!(matches!(hub.checkpoint(), Err(SapError::ShardDown { .. })));
    assert!(matches!(hub.inspect(bomb), Err(SapError::ShardDown { .. })));
    assert!(matches!(
        hub.unregister(bomb),
        Err(SapError::ShardDown { .. })
    ));
    // the queue is not poisoned: ops scoped to surviving shards answer
    assert!(hub.inspect(survivor).is_ok());
    // resize stages the eject before committing, so hitting the dead
    // shard aborts with the old placement intact — survivors keep
    // serving afterwards
    assert!(matches!(hub.resize(2), Err(SapError::ShardDown { .. })));
    assert!(hub.inspect(survivor).is_ok());
}

/// A failed resize is transactional: the eject pass stages every live
/// shard's sessions, and when it finds the detonated shard it reinstalls
/// the staged parts on their original shards instead of committing the
/// new placement. Survivor state (slide counts) must be byte-identical
/// before and after the aborted attempt — twice, because the reinstall
/// path itself must leave the hub re-abortable.
#[test]
fn failed_resize_leaves_survivors_intact() {
    let (mut hub, _bomb, survivor) = detonated(4, 2);
    let before = hub.inspect(survivor).expect("survivor serves");
    for attempt in 0..2 {
        assert!(
            matches!(hub.resize(8), Err(SapError::ShardDown { .. })),
            "attempt {attempt}"
        );
        let after = hub.inspect(survivor).expect("old placement intact");
        assert_eq!(after.slides, before.slides, "attempt {attempt}");
        assert_eq!(
            after.last_snapshot, before.last_snapshot,
            "attempt {attempt}"
        );
    }
}

/// With a single worker the panic must not take the reactor down: the
/// same thread that absorbed the unwind keeps serving every other
/// shard's commands.
#[test]
fn single_worker_survives_a_shard_death_and_keeps_serving() {
    let (mut hub, _bomb, survivor) = detonated(4, 1);
    let before = hub.inspect(survivor).expect("survivor serves").slides;
    // new registrations that land on live shards keep working through
    // the same (sole) worker thread
    for _ in 0..8 {
        let id = match hub.register(&Query::window(4).top(1).slide(2)) {
            Ok(id) => id,
            // routed to the dead shard: typed error, not a hang
            Err(SapError::ShardDown { .. }) => continue,
            Err(other) => panic!("unexpected error {other:?}"),
        };
        assert_eq!(hub.inspect(id).expect("fresh query serves").slides, 0);
    }
    assert_eq!(hub.inspect(survivor).unwrap().slides, before);
}
