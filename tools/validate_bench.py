#!/usr/bin/env python3
"""Validate the BENCH_*.json perf artifacts the experiments binary emits.

Usage:
    python3 tools/validate_bench.py BENCH_hub.json BENCH_fanout.json ...
    python3 tools/validate_bench.py            # every known artifact in cwd

Every artifact named on the command line must exist and parse; any
BENCH_*.json sitting in the working directory that this script does not
know is an error too (a new preset must teach the validator its schema
before its artifact can land). Each schema check re-asserts the
invariants the experiments binary enforced at generation time — so a
stale, truncated, or hand-edited artifact is caught even though a green
bench run already proved them once:

- every numeric field is finite (no NaN/inf smuggled through format!),
- update checksums agree wherever two paths claim equivalence,
- the shared digest plane and the count-group plane actually shared
  (positive hit counters),
- the hotpath allocation gate holds (pooled allocs/object <= pinned
  ceiling, legacy/pooled ratio >= 5x),
- the fanout quiet-path cost ratio stays clearly sub-linear in the
  query-count ladder,
- the floor preset's memoized slide close stays >= 3x cheaper per member
  than both pre-memoization arms at the ladder top, with checksum
  equality across all three and classed serving actually observed,
- the prune preset's admission control stays >= 3x faster than the
  knob-off arm at the ladder top while every arm emits byte-identical
  updates (pruning must be result-invisible to count as pruning).
"""

import json
import math
import sys
from pathlib import Path

FAILURES = []


def fail(artifact, message):
    FAILURES.append(f"{artifact}: {message}")


def check(cond, artifact, message):
    if not cond:
        fail(artifact, message)
    return cond


def assert_finite(artifact, value, path="$"):
    """Recursively reject NaN / inf anywhere in the document."""
    if isinstance(value, bool) or value is None:
        return
    if isinstance(value, (int, float)):
        check(math.isfinite(value), artifact, f"non-finite number at {path}: {value}")
    elif isinstance(value, dict):
        for k, v in value.items():
            assert_finite(artifact, v, f"{path}.{k}")
    elif isinstance(value, list):
        for i, v in enumerate(value):
            assert_finite(artifact, v, f"{path}[{i}]")


def require(artifact, obj, fields, where="run"):
    missing = [f for f in fields if f not in obj]
    check(not missing, artifact, f"{where} missing fields: {missing}")
    return not missing


def single_checksum(artifact, runs, label):
    sums = {r["checksum"] for r in runs}
    check(
        len(sums) == 1,
        artifact,
        f"{label}: paths claiming equivalence disagree on checksum: {sorted(sums)}",
    )


SCALING_RUN_FIELDS = [
    "hub",
    "shards",
    "elapsed_s",
    "objects_per_sec",
    "updates",
    "checksum",
    "digest_hits",
    "digest_rebuilds",
    "speedup_vs_sequential",
]


def validate_scaling(artifact, doc, bench):
    """BENCH_hub / BENCH_timed / BENCH_shared share one run schema."""
    check(doc.get("bench") == bench, artifact, f'expected bench "{bench}", got {doc.get("bench")!r}')
    runs = doc.get("runs", [])
    if not check(len(runs) > 0, artifact, "no runs"):
        return
    for r in runs:
        if not require(artifact, r, SCALING_RUN_FIELDS, f'run {r.get("hub")}/{r.get("shards")}'):
            return
        check(r["objects_per_sec"] > 0, artifact, f'{r["hub"]}({r["shards"]}): zero throughput')
        check(r["updates"] > 0, artifact, f'{r["hub"]}({r["shards"]}): zero updates')
        check(r["speedup_vs_sequential"] > 0, artifact, f'{r["hub"]}({r["shards"]}): zero speedup')
    # every run replays the same stream to the same queries: all
    # (update-count, checksum) pairs must be byte-identical
    check(len({r["updates"] for r in runs}) == 1, artifact, "runs disagree on update count")
    single_checksum(artifact, runs, "all runs")


def validate_hub(artifact, doc):
    validate_scaling(artifact, doc, "hub_scaling")


def validate_timed(artifact, doc):
    validate_scaling(artifact, doc, "timed_hub_scaling")


def validate_shared(artifact, doc):
    validate_scaling(artifact, doc, "shared_digest_plane")
    # the preset exists to prove sharing: every non-isolated run must
    # have served from the digest plane, and equally often
    shared = [r for r in doc.get("runs", []) if r.get("hub") != "isolated"]
    check(len(shared) > 0, artifact, "no shared runs")
    for r in shared:
        check(
            r.get("digest_hits", 0) > 0,
            artifact,
            f'{r["hub"]}({r["shards"]}): shared run with zero digest hits',
        )
    check(
        len({r.get("digest_hits") for r in shared}) == 1,
        artifact,
        "shared runs disagree on digest-hit count",
    )


def validate_hotpath(artifact, doc):
    check(doc.get("bench") == "hotpath", artifact, f'expected bench "hotpath", got {doc.get("bench")!r}')
    if not require(
        artifact,
        doc,
        ["alloc_ceiling", "alloc_ratio_legacy_vs_pooled", "speedup_pooled_vs_legacy", "runs"],
        "top level",
    ):
        return
    runs = doc["runs"]
    by_path = {r.get("path"): r for r in runs}
    if not check(
        {"legacy", "pooled"} <= set(by_path),
        artifact,
        f"need legacy and pooled runs, got {sorted(by_path)}",
    ):
        return
    for r in runs:
        require(
            artifact,
            r,
            ["path", "shards", "elapsed_s", "objects_per_sec", "updates", "checksum"],
            f'run {r.get("path")}',
        )
    # the allocation gate, re-checked from the committed numbers
    pooled = by_path["pooled"]
    check(
        pooled.get("allocs_per_object") is not None,
        artifact,
        "pooled run lost its allocation count",
    )
    if pooled.get("allocs_per_object") is not None:
        check(
            pooled["allocs_per_object"] <= doc["alloc_ceiling"],
            artifact,
            f'pooled allocs/object {pooled["allocs_per_object"]} over ceiling {doc["alloc_ceiling"]}',
        )
    check(
        doc["alloc_ratio_legacy_vs_pooled"] >= 5.0,
        artifact,
        f'legacy/pooled alloc ratio {doc["alloc_ratio_legacy_vs_pooled"]} below 5x',
    )
    # legacy, pooled, and pooled-sharded all claim byte-identical output
    single_checksum(artifact, runs, "legacy/pooled/sharded")


def validate_checkpoint(artifact, doc):
    check(
        doc.get("bench") == "checkpoint_roundtrip",
        artifact,
        f'expected bench "checkpoint_roundtrip", got {doc.get("bench")!r}',
    )
    runs = doc.get("runs", [])
    if not check(len(runs) > 0, artifact, "no runs"):
        return
    hubs = {r.get("hub") for r in runs}
    check({"sequential", "sharded"} <= hubs, artifact, f"need sequential and sharded runs, got {sorted(hubs)}")
    for r in runs:
        if not require(
            artifact,
            r,
            ["hub", "shards", "queries", "checkpoint_bytes", "bytes_per_query", "checkpoint_ms", "restore_ms", "checksum"],
            f'run {r.get("hub")}/{r.get("queries")}',
        ):
            return
        label = f'{r["hub"]}({r["queries"]} queries)'
        check(r["checkpoint_bytes"] > 0, artifact, f"{label}: empty checkpoint")
        check(r["checkpoint_ms"] > 0, artifact, f"{label}: zero checkpoint latency")
        check(r["restore_ms"] > 0, artifact, f"{label}: zero restore latency")
    # different session counts see different update streams, but every
    # run at the same session count restored onto the same checksum
    by_queries = {}
    for r in runs:
        by_queries.setdefault(r["queries"], []).append(r)
    for q, group in by_queries.items():
        single_checksum(artifact, group, f"{q}-query runs")


FANOUT_RUN_FIELDS = [
    "hub",
    "shards",
    "queries",
    "elapsed_s",
    "objects_per_sec",
    "ns_per_object",
    "quiet_objects",
    "quiet_ns_per_object",
    "updates",
    "checksum",
    "count_groups",
    "count_group_hits",
    "count_group_rebuilds",
    "speedup_vs_isolated",
]


def validate_fanout(artifact, doc):
    check(doc.get("bench") == "fanout", artifact, f'expected bench "fanout", got {doc.get("bench")!r}')
    if not require(
        artifact,
        doc,
        [
            "queries",
            "geometry_classes",
            "ladder_factor",
            "cost_ratio_isolated",
            "cost_ratio_grouped",
            "quiet_cost_ratio_isolated",
            "quiet_cost_ratio_grouped",
            "runs",
        ],
        "top level",
    ):
        return
    runs = doc["runs"]
    if not check(len(runs) > 0, artifact, "no runs"):
        return
    rungs = {}
    for r in runs:
        if not require(artifact, r, FANOUT_RUN_FIELDS, f'run {r.get("hub")}/{r.get("queries")}'):
            return
        rungs.setdefault(r["queries"], {})[r["hub"]] = r
    classes = doc["geometry_classes"]
    top = max(rungs)
    for count, pair in sorted(rungs.items()):
        if not check(
            {"isolated", "grouped"} <= set(pair),
            artifact,
            f"{count}-query rung missing isolated or grouped run (got {sorted(pair)})",
        ):
            continue
        iso, grp = pair["isolated"], pair["grouped"]
        label = f"{count}-query rung"
        # the two serving paths must be observationally identical
        check(
            grp["updates"] == iso["updates"],
            artifact,
            f'{label}: grouped delivered {grp["updates"]} updates, isolated {iso["updates"]}',
        )
        single_checksum(artifact, list(pair.values()), label)
        # and the grouped path must actually have shared: every member
        # served from its geometry class's digest, never a private rebuild
        check(grp["count_group_hits"] > 0, artifact, f"{label}: grouped run never hit a count group")
        check(
            grp["count_group_rebuilds"] == 0,
            artifact,
            f'{label}: grouped run ticked {grp["count_group_rebuilds"]} isolated rebuilds',
        )
        check(
            grp["count_groups"] == classes,
            artifact,
            f'{label}: {grp["count_groups"]} count groups, mix has {classes} geometry classes',
        )
        # an isolated count session ticks one rebuild per update by
        # construction — anything else means the counters are fabricated
        check(
            iso["count_group_rebuilds"] == iso["updates"],
            artifact,
            f'{label}: isolated rebuilds {iso["count_group_rebuilds"]} != updates {iso["updates"]}',
        )
        if iso["quiet_ns_per_object"] is not None:
            check(iso["quiet_objects"] > 0, artifact, f"{label}: quiet cost without quiet objects")
    # the sharded cross-check run lands on the top rung's reference
    sharded = [r for r in runs if r["hub"] == "grouped-sharded"]
    check(len(sharded) > 0, artifact, "no grouped-sharded cross-check run")
    for r in sharded:
        check(
            r["checksum"] == rungs[top]["isolated"]["checksum"],
            artifact,
            f'grouped-sharded({r["shards"]}) diverged from the top-rung reference',
        )
        check(r["count_group_hits"] > 0, artifact, f'grouped-sharded({r["shards"]}): no count-group hits')
    # the tentpole claim: the quiet (no-slide-completed) ingest cost of
    # the grouped path is per-geometry-class, not per-query. Three
    # faces of it, from strongest to jitter-proofest: the grouped quiet
    # cost grows sub-linearly in the query ladder, slower than the
    # isolated path's (which buffers every object into every session),
    # and at the top rung it is a small fraction of the isolated cost
    # in absolute terms (the committed artifact shows ~0.1%; 5% leaves
    # room for CI-runner noise at smoke scale, not for a regression
    # back to per-query ingest).
    ladder = doc["ladder_factor"]
    grp_ratio = doc["quiet_cost_ratio_grouped"]
    if ladder >= 2.0:
        check(
            grp_ratio < ladder,
            artifact,
            f"grouped quiet cost grew {grp_ratio}x over a {ladder}x ladder — not sub-linear",
        )
        check(
            grp_ratio < doc["quiet_cost_ratio_isolated"],
            artifact,
            f'grouped quiet ratio {grp_ratio}x not below isolated {doc["quiet_cost_ratio_isolated"]}x',
        )
    top_pair = rungs[top]
    if {"isolated", "grouped"} <= set(top_pair):
        iso_q = top_pair["isolated"]["quiet_ns_per_object"]
        grp_q = top_pair["grouped"]["quiet_ns_per_object"]
        if iso_q is not None and grp_q is not None:
            check(
                grp_q <= 0.05 * iso_q,
                artifact,
                f"top rung: grouped quiet cost {grp_q} ns/object is not far below isolated {iso_q}",
            )


ASYNC_RUN_FIELDS = [
    "hub",
    "shards",
    "workers",
    "elapsed_s",
    "objects_per_sec",
    "updates",
    "checksum",
    "publisher_parks",
    "speedup_vs_sequential",
]


FLOOR_RUN_FIELDS = [
    "arm",
    "queries",
    "elapsed_s",
    "objects_per_sec",
    "closes",
    "close_us_per_member",
    "quiet_objects",
    "quiet_ns_per_object",
    "updates",
    "checksum",
    "result_classes",
    "class_hits",
]


def validate_floor(artifact, doc):
    check(doc.get("bench") == "floor", artifact, f'expected bench "floor", got {doc.get("bench")!r}')
    if not require(
        artifact,
        doc,
        [
            "queries",
            "geometry",
            "geometry_classes",
            "top_queries",
            "improvement_vs_isolated",
            "improvement_vs_unclassed",
            "runs",
        ],
        "top level",
    ):
        return
    runs = doc["runs"]
    if not check(len(runs) > 0, artifact, "no runs"):
        return
    rungs = {}
    for r in runs:
        if not require(artifact, r, FLOOR_RUN_FIELDS, f'run {r.get("arm")}/{r.get("queries")}'):
            return
        check(
            r["close_us_per_member"] > 0,
            artifact,
            f'{r["arm"]}({r["queries"]}): zero slide-close cost',
        )
        check(r["closes"] > 0, artifact, f'{r["arm"]}({r["queries"]}): no closed slides')
        rungs.setdefault(r["queries"], {})[r["arm"]] = r
    for count, arms in sorted(rungs.items()):
        label = f"{count}-query rung"
        if not check(
            {"isolated", "unclassed", "classed"} <= set(arms),
            artifact,
            f"{label} missing an arm (got {sorted(arms)})",
        ):
            continue
        # the three serving shapes must be observationally identical
        check(
            len({r["updates"] for r in arms.values()}) == 1,
            artifact,
            f"{label}: arms disagree on update count",
        )
        single_checksum(artifact, list(arms.values()), label)
        # classed serving must actually have happened — and have been
        # impossible on the knob-off arm
        check(
            arms["classed"]["class_hits"] > 0,
            artifact,
            f"{label}: classed run never served a memoized close",
        )
        check(
            arms["classed"]["result_classes"] == doc["geometry_classes"],
            artifact,
            f'{label}: {arms["classed"]["result_classes"]} result classes, '
            f'geometry has {doc["geometry_classes"]}',
        )
        check(
            arms["unclassed"]["class_hits"] == 0,
            artifact,
            f'{label}: knob-off run claims {arms["unclassed"]["class_hits"]} memoized closes',
        )
    # the headline claim: at the ladder top, the memoized close is >= 3x
    # cheaper per member than both pre-memoization shapes
    top = doc["top_queries"]
    check(top in rungs, artifact, f"top_queries {top} has no runs")
    for field in ("improvement_vs_isolated", "improvement_vs_unclassed"):
        check(
            doc[field] >= 3.0,
            artifact,
            f"{field} {doc[field]} < 3.0 — the result-class tier stopped paying for itself",
        )
    if top in rungs and {"isolated", "unclassed", "classed"} <= set(rungs[top]):
        arms = rungs[top]
        for field, arm in (
            ("improvement_vs_isolated", "isolated"),
            ("improvement_vs_unclassed", "unclassed"),
        ):
            derived = arms[arm]["close_us_per_member"] / arms["classed"]["close_us_per_member"]
            check(
                abs(derived - doc[field]) <= 0.05 * derived,
                artifact,
                f"{field} {doc[field]} does not match the top-rung runs ({derived:.3f})",
            )


PRUNE_RUN_FIELDS = [
    "arm",
    "queries",
    "elapsed_s",
    "objects_per_sec",
    "updates",
    "checksum",
    "admitted",
    "pruned",
    "prune_rate",
]

PRUNE_ARMS = {"off", "dominance", "dominance+predicate"}


def validate_prune(artifact, doc):
    check(doc.get("bench") == "prune", artifact, f'expected bench "prune", got {doc.get("bench")!r}')
    if not require(
        artifact,
        doc,
        [
            "queries",
            "len",
            "sd_base",
            "top_queries",
            "speedup_dominance",
            "speedup_predicate",
            "runs",
        ],
        "top level",
    ):
        return
    runs = doc["runs"]
    if not check(len(runs) > 0, artifact, "no runs"):
        return
    rungs = {}
    for r in runs:
        if not require(artifact, r, PRUNE_RUN_FIELDS, f'run {r.get("arm")}/{r.get("queries")}'):
            return
        label = f'{r["arm"]}({r["queries"]})'
        check(r["objects_per_sec"] > 0, artifact, f"{label}: zero throughput")
        check(r["updates"] > 0, artifact, f"{label}: zero updates")
        if r["arm"] == "off":
            # the reference arm must never drop an object: pruned stays
            # zero by construction, so a nonzero count means the knob
            # leaked into the baseline
            check(r["pruned"] == 0, artifact, f"{label}: knob-off run claims pruned objects")
            check(r["prune_rate"] == 0.0, artifact, f"{label}: knob-off run claims a prune rate")
        else:
            # a pruning arm that never pruned proves nothing — the
            # preset's skewed scores guarantee dominated arrivals
            check(r["pruned"] > 0, artifact, f"{label}: pruning arm never pruned")
            check(r["prune_rate"] > 0.0, artifact, f"{label}: zero prune rate on a pruning arm")
        rungs.setdefault(r["queries"], {})[r["arm"]] = r
    for count, arms in sorted(rungs.items()):
        label = f"{count}-query rung"
        if not check(
            PRUNE_ARMS <= set(arms),
            artifact,
            f"{label} missing an arm (got {sorted(arms)})",
        ):
            continue
        # pruning must be result-invisible: same update stream, same
        # checksum, on every arm of every rung
        check(
            len({r["updates"] for r in arms.values()}) == 1,
            artifact,
            f"{label}: arms disagree on update count",
        )
        single_checksum(artifact, list(arms.values()), label)
    # the headline claim: at the ladder top, admission control is >= 3x
    # faster than publishing every object into every group
    top = doc["top_queries"]
    check(top in rungs, artifact, f"top_queries {top} has no runs")
    for field in ("speedup_dominance", "speedup_predicate"):
        check(
            doc[field] >= 3.0,
            artifact,
            f"{field} {doc[field]} < 3.0 — admission control stopped paying for itself",
        )
    if top in rungs and PRUNE_ARMS <= set(rungs[top]):
        arms = rungs[top]
        for field, arm in (
            ("speedup_dominance", "dominance"),
            ("speedup_predicate", "dominance+predicate"),
        ):
            derived = arms[arm]["objects_per_sec"] / arms["off"]["objects_per_sec"]
            check(
                abs(derived - doc[field]) <= 0.05 * derived,
                artifact,
                f"{field} {doc[field]} does not match the top-rung runs ({derived:.3f})",
            )


def validate_async(artifact, doc):
    check(doc.get("bench") == "async_hub", artifact, f'expected bench "async_hub", got {doc.get("bench")!r}')
    if not require(
        artifact,
        doc,
        ["host_cpus", "logical_shards", "alloc_ceiling", "allocs_per_object", "runs"],
        "top level",
    ):
        return
    runs = doc.get("runs", [])
    if not check(len(runs) > 0, artifact, "no runs"):
        return
    by_hub = {}
    for r in runs:
        if not require(artifact, r, ASYNC_RUN_FIELDS, f'run {r.get("hub")}/{r.get("workers")}w'):
            return
        label = f'{r["hub"]}({r["shards"]} shards, {r["workers"]} workers)'
        check(r["objects_per_sec"] > 0, artifact, f"{label}: zero throughput")
        check(r["updates"] > 0, artifact, f"{label}: zero updates")
        check(r["publisher_parks"] >= 0, artifact, f"{label}: negative park count")
        by_hub.setdefault(r["hub"], []).append(r)
    if not check(
        {"sequential", "sharded", "async"} <= set(by_hub),
        artifact,
        f"need sequential, sharded, and async runs, got {sorted(by_hub)}",
    ):
        return
    # every run replays the same stream to the same queries
    check(len({r["updates"] for r in runs}) == 1, artifact, "runs disagree on update count")
    single_checksum(artifact, runs, "all runs")
    # the preset exists to prove oversubscribed serving: there must be a
    # run with more logical shards than cores and one with more workers
    # than cores, and neither may have stalled the publisher
    cpus = doc["host_cpus"]
    check(
        doc["logical_shards"] > cpus,
        artifact,
        f'logical_shards {doc["logical_shards"]} not above host_cpus {cpus}',
    )
    async_runs = by_hub["async"]
    check(
        any(r["shards"] > cpus for r in async_runs),
        artifact,
        "no async run with shards > host_cpus",
    )
    check(
        any(r["workers"] > cpus for r in async_runs),
        artifact,
        "no async run with workers > host_cpus",
    )
    for r in async_runs:
        check(
            r["publisher_parks"] == 0,
            artifact,
            f'async({r["workers"]}w) parked the publisher {r["publisher_parks"]} times at bench chunking',
        )
    # the quiet-path allocation gate, re-checked from committed numbers
    check(
        doc["allocs_per_object"] <= doc["alloc_ceiling"],
        artifact,
        f'allocs/object {doc["allocs_per_object"]} over ceiling {doc["alloc_ceiling"]}',
    )
    # one reactor thread must hold single-core parity with the
    # thread-per-shard hub (the binary asserts the same 5% budget)
    sharded_1 = [r for r in by_hub["sharded"] if r["shards"] == 1]
    async_1w = [r for r in async_runs if r["workers"] == 1]
    if check(len(sharded_1) > 0, artifact, "no sharded(1) reference run") and check(
        len(async_1w) > 0, artifact, "no async 1-worker run"
    ):
        floor = 0.95 * sharded_1[0]["objects_per_sec"]
        check(
            async_1w[0]["objects_per_sec"] >= floor,
            artifact,
            f'async(1w) {async_1w[0]["objects_per_sec"]} obj/s below 95% of sharded(1) '
            f'{sharded_1[0]["objects_per_sec"]}',
        )


KNOWN = {
    "BENCH_hub.json": validate_hub,
    "BENCH_timed.json": validate_timed,
    "BENCH_shared.json": validate_shared,
    "BENCH_hotpath.json": validate_hotpath,
    "BENCH_checkpoint.json": validate_checkpoint,
    "BENCH_fanout.json": validate_fanout,
    "BENCH_floor.json": validate_floor,
    "BENCH_async.json": validate_async,
    "BENCH_prune.json": validate_prune,
}


def main(argv):
    names = argv or sorted(p.name for p in Path(".").glob("BENCH_*.json"))
    if not names:
        print("validate_bench: no BENCH_*.json artifacts found", file=sys.stderr)
        return 1
    # a preset nobody taught the validator about must not land silently,
    # whether it was named on the command line or just left in the tree
    named = {Path(n).name for n in names}
    for stray in sorted(p.name for p in Path(".").glob("BENCH_*.json")):
        if stray not in KNOWN and stray not in named:
            fail(stray, "unknown artifact — add its schema to tools/validate_bench.py")
    for name in names:
        base = Path(name).name
        if base not in KNOWN:
            fail(name, "unknown artifact — add its schema to tools/validate_bench.py")
            continue
        path = Path(name)
        if not path.is_file():
            fail(name, "missing artifact")
            continue
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            fail(name, f"unreadable: {e}")
            continue
        assert_finite(name, doc)
        KNOWN[base](name, doc)
        if not any(f.startswith(f"{name}:") for f in FAILURES):
            print(f"ok: {name}")
    if FAILURES:
        for f in FAILURES:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    print(f"validate_bench: {len(names)} artifact(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
