//! The one-line import for the query-session API:
//! `use sap::prelude::*;`.
//!
//! Brings in the fluent [`Query`] builder — both window models — with its
//! facade finalizers ([`QueryExt::build`]/[`QueryExt::session`]/
//! [`QueryExt::timed_session`]), the multi-query [`Hub`], the
//! thread-parallel [`ShardedHub`], and the reactor-multiplexed
//! [`AsyncHub`] (with its seedable [`Scheduler`]s) — all with
//! [`HubExt::register`], the
//! shared digest plane's [`HubExt::register_shared`], and the shared
//! count plane's [`HubExt::register_grouped`] (plus their
//! [`HubStats`] sharing metrics), flexible
//! ingestion ([`Ingest`]/[`TimedIngest`]), typed result deltas
//! ([`TopKEvent`]/[`SlideResult`]), the data model (count-based
//! [`Object`] and timestamped [`TimedObject`]), the workload generators
//! with their [`ArrivalProcess`] timing model, the durability plane
//! ([`Checkpoint`]/[`CheckpointError`] with the ready-made
//! [`DefaultEngineFactory`]), and the algorithm entry points.

pub use crate::{build, build_send, build_timed, DefaultEngineFactory, HubExt, QueryExt};

pub use sap_stream::{
    run, run_collecting, AlgorithmKind, AnySession, ArrivalProcess, AsyncHub, Checkpoint,
    CheckpointError, CheckpointState, Dataset, DigestProducer, DigestRef, DigestView,
    EngineFactory, EventList, FifoScheduler, GroupedSession, Hub, HubSession, HubStats, Ingest,
    Object, OpStats, Predicate, Query, QueryId, QuerySpec, QueryState, QueryUpdate, RunSummary,
    SapError, SapPolicy, Scheduler, ScoreKey, SeededScheduler, Session, ShardSession, ShardedHub,
    SharedSession, SharedTimed, SlideDigest, SlideResult, SlideScratch, SlidingTopK, Snapshot,
    SpecError, TimedIngest, TimedObject, TimedSession, TimedSpec, TimedTopK, TopKEvent, WindowSpec,
    Workload,
};

pub use sap_core::{Sap, SapConfig, TimeBased, TimeBasedSap};

pub use sap_baselines::{KSkyband, MinTopK, NaiveTopK, Sma};
