//! The one-line import for the query-session API:
//! `use sap::prelude::*;`.
//!
//! Brings in the fluent [`Query`] builder with its facade finalizers
//! ([`QueryExt::build`]/[`QueryExt::session`]), the multi-query [`Hub`]
//! with [`HubExt::register`], flexible ingestion ([`Ingest`]), typed
//! result deltas ([`TopKEvent`]/[`SlideResult`]), the data model, and the
//! algorithm entry points.

pub use crate::{build, HubExt, QueryExt};

pub use sap_stream::{
    run, run_collecting, AlgorithmKind, Dataset, Hub, Ingest, Object, OpStats, Query, QueryId,
    QueryUpdate, RunSummary, SapError, SapPolicy, ScoreKey, Session, SlideResult, SlidingTopK,
    SpecError, TopKEvent, WindowSpec, Workload,
};

pub use sap_core::{Sap, SapConfig, TimeBasedSap, TimedObject};

pub use sap_baselines::{KSkyband, MinTopK, NaiveTopK, Sma};
