//! The one-line import for the query-session API:
//! `use sap::prelude::*;`.
//!
//! Brings in the fluent [`Query`] builder with its facade finalizers
//! ([`QueryExt::build`]/[`QueryExt::session`]), the multi-query [`Hub`]
//! and thread-parallel [`ShardedHub`] with [`HubExt::register`], flexible
//! ingestion ([`Ingest`]), typed result deltas
//! ([`TopKEvent`]/[`SlideResult`]), the data model, and the algorithm
//! entry points.

pub use crate::{build, build_send, HubExt, QueryExt};

pub use sap_stream::{
    run, run_collecting, AlgorithmKind, Dataset, Hub, Ingest, Object, OpStats, Query, QueryId,
    QueryState, QueryUpdate, RunSummary, SapError, SapPolicy, ScoreKey, Session, ShardSession,
    ShardedHub, SlideResult, SlidingTopK, SpecError, TopKEvent, WindowSpec, Workload,
};

pub use sap_core::{Sap, SapConfig, TimeBasedSap, TimedObject};

pub use sap_baselines::{KSkyband, MinTopK, NaiveTopK, Sma};
