//! # sap — continuous top-k queries over streaming data
//!
//! A complete Rust reproduction of *"SAP: Improving Continuous Top-K
//! Queries over Streaming Data"* (Zhu, Wang, Yang, Zheng, Wang — IEEE TKDE
//! 29(6), 2017), packaged as a workspace facade:
//!
//! * [`core`] — the SAP framework: self-adaptive partitioning, the S-AVL
//!   structure, equal / dynamic / enhanced-dynamic partition policies, and
//!   a time-based window adapter;
//! * [`baselines`] — the paper's competitors: the naive re-scanning
//!   oracle, the k-skyband algorithm, MinTopK, and SMA with a grid index;
//! * [`stream`] — the shared data model, workload generators (simulated
//!   STOCK/TRIP/PLANET plus the exact TIMER/TIMEU), and the instrumented
//!   driver;
//! * [`stats`] — the Mann–Whitney rank test, selection algorithms, and the
//!   paper's parameter solvers;
//! * [`avltree`] — the order-statistic AVL tree underneath it all.
//!
//! ## Quickstart
//!
//! ```
//! use sap::core::{Sap, SapConfig};
//! use sap::stream::{Object, SlidingTopK, WindowSpec};
//!
//! // top-5 of the last 1000 objects, sliding 10 objects at a time
//! let spec = WindowSpec::new(1000, 5, 10).unwrap();
//! let mut query = Sap::new(SapConfig::new(spec));
//!
//! let mut id = 0u64;
//! for _ in 0..200 {
//!     let batch: Vec<Object> = (0..10)
//!         .map(|_| {
//!             let o = Object::new(id, (id % 97) as f64);
//!             id += 1;
//!             o
//!         })
//!         .collect();
//!     let top = query.slide(&batch);
//!     assert!(top.len() <= 5);
//! }
//! ```

pub use sap_avltree as avltree;
pub use sap_baselines as baselines;
pub use sap_core as core;
pub use sap_stats as stats;
pub use sap_stream as stream;
