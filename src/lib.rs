//! # sap — continuous top-k queries over streaming data
//!
//! A complete Rust reproduction of *"SAP: Improving Continuous Top-K
//! Queries over Streaming Data"* (Zhu, Wang, Yang, Zheng, Wang — IEEE TKDE
//! 29(6), 2017), grown into a query-serving library. The workspace:
//!
//! * [`core`] — the SAP framework: self-adaptive partitioning, the S-AVL
//!   structure, equal / dynamic / enhanced-dynamic partition policies, and
//!   a time-based window adapter;
//! * [`baselines`] — the paper's competitors: the naive re-scanning
//!   oracle, the k-skyband algorithm, MinTopK, and SMA with a grid index;
//! * [`stream`] — the shared data model, workload generators, the
//!   instrumented driver, and the query-session API re-exported through
//!   [`prelude`];
//! * [`stats`] — the Mann–Whitney rank test, selection algorithms, and the
//!   paper's parameter solvers;
//! * [`avltree`] — the order-statistic AVL tree underneath it all.
//!
//! ## Quickstart
//!
//! Describe a query with the fluent builder, [`build`] it into an engine,
//! and feed it through a [`Session`] — pushes of *any*
//! size are re-chunked internally, and every completed slide reports both
//! the snapshot and what changed:
//!
//! ```
//! use sap::prelude::*;
//!
//! // top-5 of the last 1000 objects, re-evaluated every 10 arrivals
//! let query = Query::window(1000).top(5).slide(10);
//! let mut session = query.session().unwrap();
//!
//! let mut id = 0u64;
//! for burst in [3usize, 17, 256, 41] {
//!     let batch: Vec<Object> = (0..burst)
//!         .map(|_| {
//!             let o = Object::new(id, (id % 97) as f64);
//!             id += 1;
//!             o
//!         })
//!         .collect();
//!     for slide in session.push(&batch) {
//!         assert!(slide.snapshot.len() <= 5);
//!         for event in &slide.events {
//!             match event {
//!                 TopKEvent::Entered(o) => assert!(slide.snapshot.contains(o)),
//!                 TopKEvent::Exited(o) => assert!(!slide.snapshot.contains(o)),
//!                 TopKEvent::Unchanged => {}
//!             }
//!         }
//!     }
//! }
//! ```
//!
//! Many standing queries — mixed geometries *and* mixed algorithms —
//! share one stream through a [`Hub`]:
//!
//! ```
//! use sap::prelude::*;
//!
//! let mut hub = Hub::new();
//! let fast = hub.register(&Query::window(100).top(3).slide(10)).unwrap();
//! let deep = hub
//!     .register(&Query::window(500).top(20).slide(50).algorithm(AlgorithmKind::MinTopK))
//!     .unwrap();
//!
//! for o in (0..1000).map(|i| Object::new(i, (i % 31) as f64)) {
//!     for update in hub.publish_one(o) {
//!         assert!(update.query == fast || update.query == deep);
//!     }
//! }
//! assert_eq!(hub.session(fast).unwrap().slides(), 100);
//! assert_eq!(hub.session(deep).unwrap().slides(), 20);
//! ```

pub use sap_avltree as avltree;
pub use sap_baselines as baselines;
pub use sap_core as core;
pub use sap_stats as stats;
pub use sap_stream as stream;

/// Compiles and runs the README's code blocks as doctests, so the
/// quickstart can never rot: `cargo test --doc` (the CI docs job)
/// executes them against the real crate.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

pub mod prelude;

use sap_core::TimeBased;
use sap_stream::{
    AlgorithmKind, AsyncHub, EngineFactory, Hub, Query, QueryId, SapError, Session, ShardedHub,
    SlidingTopK, TimedSession, TimedSpec, TimedTopK, WindowSpec,
};

/// Builds the boxed engine a count-based [`Query`] describes, dispatching
/// [`AlgorithmKind::Sap`] to the [`core`]
/// engine and every other kind to [`baselines`]. Validates the query
/// first; all failures surface as [`SapError`], and a time-based query is
/// [`SapError::NotCountBased`] (see [`build_timed`]).
pub fn build(query: &Query) -> Result<Box<dyn SlidingTopK>, SapError> {
    let alg: Box<dyn SlidingTopK + Send> = build_send(query)?;
    Ok(alg)
}

/// Like [`build`], but the box is [`Send`] so the engine can be
/// registered with a [`ShardedHub`], whose workers
/// own their queries on dedicated threads. Every algorithm in this
/// workspace is `Send`; the separate entry point only exists because
/// `dyn SlidingTopK + Send` and `dyn SlidingTopK` are distinct types.
pub fn build_send(query: &Query) -> Result<Box<dyn SlidingTopK + Send>, SapError> {
    build_engine(query.validate()?, query)
}

/// Engine construction shared by the count-based and time-based paths:
/// the spec is either the query's own `⟨n, k, s⟩` or the Appendix-A
/// reduction of its durations.
fn build_engine(spec: WindowSpec, query: &Query) -> Result<Box<dyn SlidingTopK + Send>, SapError> {
    if let Some(cfg) = sap_core::SapConfig::from_kind(spec, query.kind()) {
        return Ok(Box::new(sap_core::Sap::new(cfg?)));
    }
    sap_baselines::from_kind(spec, query.kind())
        .expect("every non-SAP algorithm kind is a baseline")
}

/// Builds the boxed time-based engine a [`Query::window_duration`] query
/// describes: the configured algorithm is constructed over the
/// Appendix-A reduction and wrapped in [`TimeBased`]
/// — so SAP *and* every baseline answer time-based queries. A
/// count-based query is [`SapError::NotTimeBased`].
pub fn build_timed(query: &Query) -> Result<Box<dyn TimedTopK + Send>, SapError> {
    let spec: TimedSpec = query.validate_timed()?;
    let inner = build_engine(spec.reduced().map_err(SapError::Spec)?, query)?;
    let adapter = TimeBased::from_engine(inner, spec.window_duration, spec.slide_duration)
        .expect("validated durations reduce to the engine's spec");
    Ok(Box::new(adapter))
}

/// The facade's [`EngineFactory`]: rebuilds any engine this workspace
/// ships from the name a checkpoint recorded
/// ([`SlidingTopK::name`]), so
/// [`Hub::restore`](stream::Hub::restore) and
/// [`ShardedHub::restore`](stream::ShardedHub::restore) work
/// out of the box for every SAP variant and every baseline.
///
/// Restored engines use each algorithm's *default* construction for the
/// recorded spec — tuning knobs that do not change answers (SMA's `kmax`
/// and grid resolution, SAP's `alpha`) are not captured by the format,
/// which is sound because every engine is an exact top-k function of its
/// window: outputs are byte-identical regardless of those knobs. A name
/// the factory does not recognise (e.g. a checkpoint from a build with a
/// custom engine) is [`SapError::Checkpoint`] with
/// [`CheckpointError::UnknownEngine`](stream::checkpoint::CheckpointError::UnknownEngine);
/// supply your own [`EngineFactory`] to extend the table.
///
/// ```
/// use sap::prelude::*;
///
/// let mut hub = Hub::new();
/// hub.register(&Query::window(100).top(3).slide(10)).unwrap();
/// let bytes = hub.checkpoint().as_bytes().to_vec();
///
/// let restored = Hub::restore(
///     &Checkpoint::from_bytes(&bytes).unwrap(),
///     &DefaultEngineFactory,
/// )
/// .unwrap();
/// assert_eq!(restored.len(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultEngineFactory;

impl DefaultEngineFactory {
    fn by_name(name: &str, spec: WindowSpec) -> Result<Box<dyn SlidingTopK + Send>, SapError> {
        let cfg = match name {
            "SAP" => Some(sap_core::SapConfig::enhanced(spec)),
            "SAP-dyna" => Some(sap_core::SapConfig::dynamic(spec)),
            "SAP-equal+savl" => Some(sap_core::SapConfig::equal(spec, None)),
            "SAP-equal" => Some(sap_core::SapConfig::equal(spec, None).without_savl()),
            "SAP-equal-nondelay" => Some(sap_core::SapConfig::equal(spec, None).without_delay()),
            _ => None,
        };
        if let Some(cfg) = cfg {
            return Ok(Box::new(sap_core::Sap::new(cfg)));
        }
        let kind = match name {
            "naive" => AlgorithmKind::Naive,
            "k-skyband" => AlgorithmKind::KSkyband,
            "MinTopK" => AlgorithmKind::MinTopK,
            "SMA" => AlgorithmKind::sma(),
            _ => return Err(SapError::checkpoint_unknown_engine(name)),
        };
        sap_baselines::from_kind(spec, &kind).expect("every mapped name is a baseline kind")
    }
}

impl EngineFactory for DefaultEngineFactory {
    fn count(&self, name: &str, spec: WindowSpec) -> Result<Box<dyn SlidingTopK + Send>, SapError> {
        Self::by_name(name, spec)
    }

    fn timed(&self, name: &str, spec: TimedSpec) -> Result<Box<dyn TimedTopK + Send>, SapError> {
        let inner = Self::by_name(name, spec.reduced().map_err(SapError::Spec)?)?;
        let adapter = TimeBased::from_engine(inner, spec.window_duration, spec.slide_duration)
            .expect("a spec that reduces also wraps");
        Ok(Box::new(adapter))
    }
}

/// Builder finalizers on [`Query`], available via [`prelude`].
///
/// `Query` lives in `sap_stream`, below the algorithm crates, so the
/// construction step lands here where SAP and the baselines are both in
/// scope.
pub trait QueryExt {
    /// Validates and constructs the described count-based algorithm.
    fn build(&self) -> Result<Box<dyn SlidingTopK>, SapError>;

    /// Validates, constructs, and wraps the algorithm in a
    /// [`Session`] accepting arbitrary-size pushes.
    fn session(&self) -> Result<Session<Box<dyn SlidingTopK>>, SapError>;

    /// Validates and constructs the described time-based engine (see
    /// [`build_timed`]).
    fn build_timed(&self) -> Result<Box<dyn TimedTopK + Send>, SapError>;

    /// Validates, constructs, and wraps the time-based engine in a
    /// [`TimedSession`] accepting timestamped pushes.
    fn timed_session(&self) -> Result<TimedSession<Box<dyn TimedTopK + Send>>, SapError>;
}

impl QueryExt for Query {
    fn build(&self) -> Result<Box<dyn SlidingTopK>, SapError> {
        build(self)
    }

    fn session(&self) -> Result<Session<Box<dyn SlidingTopK>>, SapError> {
        Ok(Session::new(build(self)?))
    }

    fn build_timed(&self) -> Result<Box<dyn TimedTopK + Send>, SapError> {
        build_timed(self)
    }

    fn timed_session(&self) -> Result<TimedSession<Box<dyn TimedTopK + Send>>, SapError> {
        Ok(TimedSession::new(build_timed(self)?))
    }
}

/// Query registration on [`Hub`] and [`ShardedHub`], available via
/// [`prelude`].
pub trait HubExt {
    /// Validates and constructs a query — **of either window model** —
    /// then registers it as a standing subscription, returning its
    /// handle. Count-based queries slide on published arrival counts;
    /// time-based queries (built with [`Query::window_duration`]) slide
    /// on the timestamps of `publish_timed` streams, each running its own
    /// isolated Appendix-A adapter (see
    /// [`register_shared`](HubExt::register_shared) for the sharing
    /// alternative). Isolated registrations have no admission plane, so a
    /// query carrying a non-trivial [`Query::filter`] predicate is
    /// rejected with [`SapError::PredicateUnsupported`] — register it on
    /// a shared plane instead.
    fn register(&mut self, query: &Query) -> Result<QueryId, SapError>;

    /// Validates and constructs a **time-based** query, then registers it
    /// on the hub's shared digest plane: every registered query with the
    /// same `slide_duration` **and the same [`Query::filter`]
    /// predicate** is served from one per-slide top-`k_max` digest
    /// instead of recomputing its own, with byte-identical results.
    /// Predicate-disjoint queries on one slide duration form separate
    /// sub-groups, so a selective subscription never perturbs a pass-all
    /// neighbor. A count-based query is [`SapError::NotTimeBased`].
    fn register_shared(&mut self, query: &Query) -> Result<QueryId, SapError>;

    /// Validates and constructs a **count-based** query, then registers
    /// it on the hub's shared count plane: queries are grouped by window
    /// geometry (slide length + registration offset mod `s`) and
    /// [`Query::filter`] predicate, each group ingests every published
    /// object once, and members slice their `(n, k)` view from the
    /// group's shared per-slide digest — with results byte-identical to
    /// [`register`](HubExt::register). A time-based query is
    /// [`SapError::NotCountBased`].
    fn register_grouped(&mut self, query: &Query) -> Result<QueryId, SapError>;
}

/// Isolated registrations carry no admission plane: reject a filtered
/// query up front instead of silently ignoring its predicate.
fn reject_isolated_predicate(query: &Query) -> Result<(), SapError> {
    if query.predicate().is_pass_all() {
        Ok(())
    } else {
        Err(SapError::PredicateUnsupported)
    }
}

impl HubExt for Hub {
    fn register(&mut self, query: &Query) -> Result<QueryId, SapError> {
        reject_isolated_predicate(query)?;
        if query.is_time_based() {
            let engine: Box<dyn TimedTopK> = build_timed(query)?;
            Ok(self.register_timed_boxed(engine))
        } else {
            Ok(self.register_boxed(build(query)?))
        }
    }

    fn register_shared(&mut self, query: &Query) -> Result<QueryId, SapError> {
        let spec = query.validate_timed()?;
        let engine = build_engine(spec.reduced().map_err(SapError::Spec)?, query)?;
        self.register_shared_filtered_boxed(
            engine,
            spec.window_duration,
            spec.slide_duration,
            query.predicate(),
        )
    }

    fn register_grouped(&mut self, query: &Query) -> Result<QueryId, SapError> {
        let spec = query.validate()?;
        let reduced = TimedSpec::new(spec.n as u64, spec.s as u64, spec.k)
            .and_then(|t| t.reduced())
            .map_err(SapError::Spec)?;
        let engine: Box<dyn SlidingTopK> = build_engine(reduced, query)?;
        self.register_grouped_filtered_boxed(engine, spec.n, spec.s, query.predicate())
    }
}

impl HubExt for ShardedHub {
    fn register(&mut self, query: &Query) -> Result<QueryId, SapError> {
        reject_isolated_predicate(query)?;
        if query.is_time_based() {
            self.register_timed_boxed(build_timed(query)?)
        } else {
            self.register_boxed(build_send(query)?)
        }
    }

    fn register_shared(&mut self, query: &Query) -> Result<QueryId, SapError> {
        let spec = query.validate_timed()?;
        let engine = build_engine(spec.reduced().map_err(SapError::Spec)?, query)?;
        self.register_shared_filtered_boxed(
            engine,
            spec.window_duration,
            spec.slide_duration,
            query.predicate(),
        )
    }

    fn register_grouped(&mut self, query: &Query) -> Result<QueryId, SapError> {
        let spec = query.validate()?;
        let reduced = TimedSpec::new(spec.n as u64, spec.s as u64, spec.k)
            .and_then(|t| t.reduced())
            .map_err(SapError::Spec)?;
        self.register_grouped_filtered_boxed(
            build_engine(reduced, query)?,
            spec.n,
            spec.s,
            query.predicate(),
        )
    }
}

impl HubExt for AsyncHub {
    fn register(&mut self, query: &Query) -> Result<QueryId, SapError> {
        reject_isolated_predicate(query)?;
        if query.is_time_based() {
            self.register_timed_boxed(build_timed(query)?)
        } else {
            self.register_boxed(build_send(query)?)
        }
    }

    fn register_shared(&mut self, query: &Query) -> Result<QueryId, SapError> {
        let spec = query.validate_timed()?;
        let engine = build_engine(spec.reduced().map_err(SapError::Spec)?, query)?;
        self.register_shared_filtered_boxed(
            engine,
            spec.window_duration,
            spec.slide_duration,
            query.predicate(),
        )
    }

    fn register_grouped(&mut self, query: &Query) -> Result<QueryId, SapError> {
        let spec = query.validate()?;
        let reduced = TimedSpec::new(spec.n as u64, spec.s as u64, spec.k)
            .and_then(|t| t.reduced())
            .map_err(SapError::Spec)?;
        self.register_grouped_filtered_boxed(
            build_engine(reduced, query)?,
            spec.n,
            spec.s,
            query.predicate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn build_dispatches_sap_and_baselines() {
        let base = Query::window(100).top(5).slide(10);
        assert_eq!(base.build().unwrap().name(), "SAP");
        for (kind, name) in [
            (AlgorithmKind::Naive, "naive"),
            (AlgorithmKind::KSkyband, "k-skyband"),
            (AlgorithmKind::MinTopK, "MinTopK"),
            (AlgorithmKind::sma(), "SMA"),
        ] {
            assert_eq!(base.clone().algorithm(kind).build().unwrap().name(), name);
        }
        let dyna = base
            .clone()
            .algorithm(AlgorithmKind::Sap {
                policy: SapPolicy::Dynamic,
                delay_formation: true,
                use_savl: true,
                alpha: 0.05,
            })
            .build()
            .unwrap();
        assert_eq!(dyna.name(), "SAP-dyna");
    }

    #[test]
    fn build_propagates_validation_errors() {
        assert!(matches!(
            Query::window(0).top(1).build(),
            Err(SapError::Spec(_))
        ));
        assert!(matches!(
            Query::window(100)
                .top(10)
                .slide(10)
                .algorithm(AlgorithmKind::Sma {
                    kmax: Some(1),
                    grid_buckets: None
                })
                .build(),
            Err(SapError::KMaxTooSmall { .. })
        ));
    }

    #[test]
    fn hub_register_validates() {
        let mut hub = Hub::new();
        assert!(hub.register(&Query::window(10)).is_err(), "missing k");
        assert_eq!(hub.len(), 0, "failed registration leaves no session");
        let id = hub.register(&Query::window(10).top(2).slide(5)).unwrap();
        assert_eq!(hub.session(id).unwrap().spec().k, 2);
    }

    #[test]
    fn isolated_register_rejects_predicates_but_shared_planes_accept() {
        let keyed = Predicate::any().score_at_least(3.0);
        let counted = Query::window(10).top(2).slide(5).filter(keyed);
        let timed = Query::window_duration(10)
            .top(2)
            .slide_duration(5)
            .filter(keyed);

        let mut hub = Hub::new();
        for q in [&counted, &timed] {
            assert!(matches!(
                hub.register(q),
                Err(SapError::PredicateUnsupported)
            ));
        }
        assert_eq!(hub.len(), 0, "rejected registrations leave no session");
        hub.register_shared(&timed).unwrap();
        hub.register_grouped(&counted).unwrap();
        assert_eq!(hub.len(), 2);

        let mut sharded = ShardedHub::new(2);
        assert!(matches!(
            sharded.register(&counted),
            Err(SapError::PredicateUnsupported)
        ));
        sharded.register_shared(&timed).unwrap();

        let mut reactor = AsyncHub::new(2, 1);
        assert!(matches!(
            reactor.register(&timed),
            Err(SapError::PredicateUnsupported)
        ));
        reactor.register_grouped(&counted).unwrap();
    }

    #[test]
    fn session_and_direct_slides_agree() {
        let query = Query::window(60).top(4).slide(6);
        let data: Vec<Object> = (0..240)
            .map(|i| Object::new(i, ((i * 37) % 101) as f64))
            .collect();
        let mut direct = query.build().unwrap();
        let mut session = query.session().unwrap();
        let mut expected = Vec::new();
        for batch in data.chunks_exact(6) {
            expected.push(direct.slide(batch).to_vec());
        }
        // deliver the same stream in ragged chunks
        let got: Vec<Snapshot> = [&data[..5], &data[5..9], &data[9..200], &data[200..]]
            .into_iter()
            .flat_map(|chunk| session.push(chunk))
            .map(|r| r.snapshot)
            .collect();
        assert_eq!(got, expected);
    }
}
